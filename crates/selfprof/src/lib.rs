//! Zero-cost-when-disabled self-profiling for the hot-path engine.
//!
//! The paper's thesis is that cheap, well-placed profiling beats
//! heavyweight instrumentation; this crate turns that discipline on the
//! engine itself. It answers two questions about the serve/bench pipeline
//! — *where does wall time go* and *where does allocation pressure come
//! from* — with near-zero overhead when enabled and literally zero when
//! disabled (no features: stage guards are ZSTs, the system allocator is
//! linked directly, and every call site compiles out).
//!
//! Four pieces:
//!
//! * **Stage scopes** — [`StageGuard`] / the [`stage!`](crate::stage)
//!   macro wrap the pipeline's hot sections ([`Stage`] names them). Each
//!   guard records wall time into a per-thread power-of-two histogram
//!   (p50/p95/p99 in reports) and snapshots the thread's allocation
//!   counters for per-visit maxima.
//! * **The measuring allocator** (`alloc` feature) — a
//!   `#[global_allocator]` wrapper over `System` attributing every
//!   allocation's size to the innermost active stage on the allocating
//!   thread via destructor-free thread-local cells. See [`MeasuringAlloc`].
//! * **The background aggregator** — a detached thread that every ~200ms
//!   drains per-thread counter slots into a global accumulator (hot paths
//!   never contend a shared line) and refreshes the cached peak-RSS
//!   high-water mark ([`peak_rss_bytes`]).
//! * **Reports** — [`report`] snapshots everything into a
//!   [`SelfProfReport`]: versioned, FNV-sealed binary encoding (magic
//!   `HPSP`, like serve's `HPSS` snapshots), JSON for the [`serve_http`]
//!   `GET /selfprof` endpoint, and a fixed-width table for loadgen's
//!   `--console` view.
//!
//! # Example
//!
//! ```
//! use hotpath_selfprof as selfprof;
//!
//! let sum: u64 = selfprof::stage!(selfprof::Stage::VmSlice, {
//!     (0..100u64).sum()
//! });
//! assert_eq!(sum, 4950);
//! let report = selfprof::report();
//! # #[cfg(feature = "enabled")]
//! assert!(report.stage("vm_slice").is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "alloc")]
mod alloc;
mod http;
mod report;
mod rss;
#[cfg(feature = "enabled")]
mod slots;
mod stage;

#[cfg(feature = "alloc")]
pub use alloc::MeasuringAlloc;
pub use http::serve_http;
pub use report::{
    ReportError, SelfProfReport, StageReport, BUCKET_COUNT, NS_BOUNDS, REPORT_VERSION,
};
pub use rss::peak_rss_bytes;
pub use stage::{Stage, STAGE_COUNT};

/// True when this build collects stage data (`enabled` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// True when this build attributes allocations (`alloc` feature).
pub const fn alloc_tracking() -> bool {
    cfg!(feature = "alloc")
}

/// Runs `$body` inside a stage scope: wall time and (with the `alloc`
/// feature) allocation pressure are attributed to `$stage` until the
/// expression finishes. Scopes nest; allocations go to the innermost.
#[macro_export]
macro_rules! stage {
    ($stage:expr, $body:expr) => {{
        let _selfprof_stage_guard = $crate::StageGuard::enter($stage);
        $body
    }};
}

#[cfg(feature = "enabled")]
pub use enabled_impl::{report, StageGuard};

#[cfg(feature = "enabled")]
mod enabled_impl {
    use std::sync::atomic::Ordering::Relaxed;
    use std::time::Instant;

    use hotpath_telemetry::Histogram;

    use crate::report::{SelfProfReport, StageReport, REPORT_VERSION};
    use crate::slots;
    use crate::stage::Stage;
    use crate::NS_BOUNDS;

    /// RAII scope attributing wall time and allocations to one [`Stage`].
    ///
    /// Holds a raw pointer into this thread's slot, so it is `!Send` by
    /// construction — a guard must drop on the thread that entered it.
    #[derive(Debug)]
    pub struct StageGuard {
        slot: *const slots::ThreadSlot,
        stage: Stage,
        prev_stage: u8,
        visit_bytes0: u64,
        visit_count0: u64,
        start: Instant,
    }

    impl StageGuard {
        /// Enters `stage` on the current thread, registering the thread
        /// with the aggregator on first use.
        #[inline]
        pub fn enter(stage: Stage) -> StageGuard {
            let slot = slots::slot_ptr();
            let prev_stage = slots::swap_current_stage(stage as u8);
            let (visit_bytes0, visit_count0) = slots::visit_marks();
            StageGuard {
                slot,
                stage,
                prev_stage,
                visit_bytes0,
                visit_count0,
                start: Instant::now(),
            }
        }
    }

    impl Drop for StageGuard {
        fn drop(&mut self) {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            slots::swap_current_stage(self.prev_stage);
            // SAFETY: the pointer was handed out by `slot_ptr` on this
            // thread and the guard is `!Send`; the registry keeps the
            // slot alive at least until this thread's holder drops.
            let slot = unsafe { &*self.slot };
            let s = &slot.stages[self.stage as usize];
            s.visits.fetch_add(1, Relaxed);
            s.wall_ns_sum.fetch_add(ns, Relaxed);
            s.wall_ns_max.fetch_max(ns, Relaxed);
            let idx = NS_BOUNDS.partition_point(|&b| b < ns).min(NS_BOUNDS.len());
            s.wall_buckets[idx].fetch_add(1, Relaxed);
            let (bytes_now, count_now) = slots::visit_marks();
            s.bytes_max_visit
                .fetch_max(bytes_now.wrapping_sub(self.visit_bytes0), Relaxed);
            s.count_max_visit
                .fetch_max(count_now.wrapping_sub(self.visit_count0), Relaxed);
        }
    }

    /// Snapshots the current self-profile: drains every thread slot
    /// synchronously, then renders the accumulated totals. Stages with no
    /// visits and no allocations are omitted.
    pub fn report() -> SelfProfReport {
        slots::drain();
        let accum = slots::accum_lock();
        let mut stages = Vec::new();
        for (stage, acc) in Stage::ALL.iter().zip(accum.stages.iter()) {
            if acc.visits == 0 && acc.alloc_count == 0 {
                continue;
            }
            let wall = Histogram::from_parts(
                &NS_BOUNDS,
                acc.wall_buckets.to_vec(),
                acc.wall_ns_sum,
                acc.wall_ns_max,
            )
            .expect("accumulator bucket layout matches NS_BOUNDS");
            stages.push(StageReport {
                name: stage.name().to_string(),
                wall,
                alloc_bytes: acc.alloc_bytes,
                alloc_count: acc.alloc_count,
                bytes_max_single: acc.bytes_max_single,
                bytes_max_visit: acc.bytes_max_visit,
                count_max_visit: acc.count_max_visit,
            });
        }
        drop(accum);
        SelfProfReport {
            version: REPORT_VERSION,
            peak_rss_bytes: crate::rss::peak_rss_bytes(),
            stages,
        }
    }
}

#[cfg(not(feature = "enabled"))]
pub use disabled_impl::{report, StageGuard};

#[cfg(not(feature = "enabled"))]
mod disabled_impl {
    use crate::report::SelfProfReport;
    use crate::stage::Stage;

    /// No-op stand-in when the `enabled` feature is off: a ZST whose
    /// construction and drop compile to nothing.
    #[derive(Debug)]
    pub struct StageGuard;

    impl StageGuard {
        /// Does nothing.
        #[inline(always)]
        pub fn enter(_stage: Stage) -> StageGuard {
            StageGuard
        }
    }

    /// Always the empty report in a disabled build.
    pub fn report() -> SelfProfReport {
        SelfProfReport::empty()
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn guards_record_visits_into_the_report() {
        for _ in 0..3 {
            stage!(Stage::SnapshotSave, {
                std::hint::black_box(vec![0u8; 512]);
            });
        }
        let report = report();
        let stage = report.stage("snapshot_save").expect("stage present");
        assert!(stage.visits() >= 3);
        assert!(stage.wall.sum() > 0, "elapsed time recorded");
        if alloc_tracking() {
            assert!(stage.alloc_bytes >= 3 * 512);
            assert!(stage.bytes_max_visit >= 512);
        }
    }

    #[test]
    fn nested_scopes_restore_the_outer_stage() {
        stage!(Stage::ShardDispatch, {
            stage!(Stage::VmSlice, {
                std::hint::black_box(1 + 1);
            });
            // Inner guard dropped: further work belongs to the outer
            // stage again, which the visit counts below prove.
            std::hint::black_box(2 + 2);
        });
        let report = report();
        assert!(report.stage("shard_dispatch").expect("outer").visits() >= 1);
        assert!(report.stage("vm_slice").expect("inner").visits() >= 1);
    }

    #[test]
    fn cross_thread_slots_drain_into_one_report() {
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    stage!(Stage::Prewarm, {
                        std::hint::black_box(String::from("warm"));
                    })
                })
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
        let report = report();
        assert!(report.stage("prewarm").expect("stage").visits() >= 4);
    }
}
