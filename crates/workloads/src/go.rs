//! `go` — a board-position evaluator over a mutating 19×19 board.
//!
//! SPECint95 `go` plays Go: tens of thousands of paths with moderate
//! dominance (Table 1: 29,629 paths, 55.5% hot flow). This workload
//! evaluates a stream of candidate moves against a board whose cells it
//! also mutates, so each move's path depends on four neighbor states, edge
//! conditions, and a liberty-scan loop — high combinatorial variety with a
//! mild empty-cell bias supplying the warm half of the flow.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{CmpOp, GlobalReg, Program};

use crate::build_util::{end_loop, loop_up_to, DataLayout};
use crate::scale::Scale;

const SIZE: i64 = 19;
const CELLS: usize = (SIZE * SIZE) as usize;

/// Builds the `go` workload at `scale`.
pub fn build(scale: Scale) -> Program {
    let moves = scale.pick(2_500, 90_000, 1_400_000);
    let (board, move_stream) = generate_inputs(moves, 0x60);

    let mut dl = DataLayout::new();
    let board_base = dl.array(CELLS);
    let moves_base = dl.array(moves);

    let mut fb = FunctionBuilder::new("main");
    let nn = fb.imm(moves as i64);
    let board_b = fb.imm(board_base as i64);
    let moves_b = fb.imm(moves_base as i64);
    let score = fb.imm(0);
    let pos = fb.reg();
    let row = fb.reg();
    let col = fb.reg();
    let addr = fb.reg();
    let cell = fb.reg();
    let libs = fb.reg();
    let tmp = fb.reg();
    let color = fb.imm(1);

    let main_loop = loop_up_to(&mut fb, nn);
    fb.add(addr, moves_b, main_loop.i);
    fb.load(pos, addr, 0);
    // row = pos / 19, col = pos % 19
    fb.bin_imm(hotpath_ir::BinOp::Div, row, pos, SIZE);
    fb.rem_imm(col, pos, SIZE);
    fb.const_(libs, 0);

    // Examine all eight neighbors; each contributes edge + state branches,
    // giving each move a path drawn from a ~4^8 combinatorial space.
    // Offsets: N, S, W, E, NW, NE, SW, SE.
    for (k, off) in [
        (0, -SIZE),
        (1, SIZE),
        (2, -1i64),
        (3, 1i64),
        (4, -SIZE - 1),
        (5, -SIZE + 1),
        (6, SIZE - 1),
        (7, SIZE + 1),
    ] {
        // Edge test blocks, created in layout order.
        let in_bounds = fb.new_block();
        let empty_b = fb.new_block();
        let stone_b = fb.new_block();
        let mine_b = fb.new_block();
        let theirs_b = fb.new_block();
        let join = fb.new_block();
        // Bounds check: vertical neighbors test the row, horizontal the
        // column, diagonals both.
        let cond = match k {
            0 => fb.cmp_imm(CmpOp::Gt, row, 0),
            1 => fb.cmp_imm(CmpOp::Lt, row, SIZE - 1),
            2 => fb.cmp_imm(CmpOp::Gt, col, 0),
            3 => fb.cmp_imm(CmpOp::Lt, col, SIZE - 1),
            _ => {
                let r = match k {
                    4 | 5 => fb.cmp_imm(CmpOp::Gt, row, 0),
                    _ => fb.cmp_imm(CmpOp::Lt, row, SIZE - 1),
                };
                let c2 = match k {
                    4 | 6 => fb.cmp_imm(CmpOp::Gt, col, 0),
                    _ => fb.cmp_imm(CmpOp::Lt, col, SIZE - 1),
                };
                fb.bin(hotpath_ir::BinOp::And, r, r, c2);
                r
            }
        };
        fb.branch(cond, in_bounds, join);
        fb.switch_to(in_bounds);
        fb.add_imm(tmp, pos, off);
        fb.add(addr, board_b, tmp);
        fb.load(cell, addr, 0);
        let is_empty = fb.cmp_imm(CmpOp::Eq, cell, 0);
        fb.branch(is_empty, empty_b, stone_b);
        fb.switch_to(empty_b);
        fb.add_imm(libs, libs, 1);
        fb.jump(join);
        fb.switch_to(stone_b);
        let same = fb.cmp(CmpOp::Eq, cell, color);
        fb.branch(same, mine_b, theirs_b);
        fb.switch_to(mine_b);
        fb.add_imm(score, score, 2);
        fb.jump(join);
        fb.switch_to(theirs_b);
        fb.add_imm(score, score, -1);
        fb.jump(join);
        fb.switch_to(join);
    }

    // Liberty-scan loop: walk `libs` pseudo-liberties, reading along the
    // row (data-dependent trip count 0..4).
    let scan = loop_up_to(&mut fb, libs);
    fb.add(tmp, pos, scan.i);
    fb.rem_imm(tmp, tmp, CELLS as i64);
    fb.add(addr, board_b, tmp);
    fb.load(cell, addr, 0);
    fb.add(score, score, cell);
    end_loop(&mut fb, &scan, 1);

    // Play the move if the target cell is empty and it has liberties:
    // mutates the board, shifting the branch distribution over time.
    let play_check = fb.new_block();
    let play = fb.new_block();
    let flip = fb.new_block();
    let done = fb.new_block();
    fb.jump(play_check);
    fb.switch_to(play_check);
    fb.add(addr, board_b, pos);
    fb.load(cell, addr, 0);
    let vacant = fb.cmp_imm(CmpOp::Eq, cell, 0);
    let has_libs = fb.cmp_imm(CmpOp::Gt, libs, 0);
    fb.bin(hotpath_ir::BinOp::And, vacant, vacant, has_libs);
    fb.branch(vacant, play, done);
    fb.switch_to(play);
    fb.store(color, addr, 0);
    fb.jump(flip);
    fb.switch_to(flip);
    // Alternate colors: color = 3 - color.
    fb.const_(tmp, 3);
    fb.sub(color, tmp, color);
    fb.jump(done);
    fb.switch_to(done);

    end_loop(&mut fb, &main_loop, 1);
    fb.set_global(GlobalReg::new(0), score);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("go builds");
    pb.memory_words(dl.total());
    for (k, &c) in board.iter().enumerate() {
        if c != 0 {
            pb.datum(board_base + k, c);
        }
    }
    for (k, &m) in move_stream.iter().enumerate() {
        if m != 0 {
            pb.datum(moves_base + k, m);
        }
    }
    pb.finish().expect("go validates")
}

fn generate_inputs(moves: usize, seed: u64) -> (Vec<i64>, Vec<i64>) {
    let mut rng = Rng64::seed_from_u64(seed);
    // Half-empty starting board: the empty-cell bias gives the flow its
    // warm core.
    let board: Vec<i64> = (0..CELLS)
        .map(|_| {
            if rng.gen_bool(0.4) {
                0
            } else if rng.gen_bool(0.5) {
                1
            } else {
                2
            }
        })
        .collect();
    // Moves concentrate around a handful of battle regions (Zipf-ish).
    let centers: Vec<i64> = (0..6).map(|_| rng.gen_range(0..CELLS as i64)).collect();
    let stream = (0..moves)
        .map(|_| {
            if rng.gen_bool(0.45) {
                let c = centers[rng.gen_range(0..centers.len())];
                let jitter = rng.gen_range(-12..=12i64);
                (c + jitter).rem_euclid(CELLS as i64)
            } else {
                rng.gen_range(0..CELLS as i64)
            }
        })
        .collect();
    (board, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn go_runs_and_halts() {
        let p = build(Scale::Smoke);
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut CountingObserver::default()).unwrap();
        assert!(stats.halted);
        // 4 neighbor checks per move at minimum.
        assert!(stats.cond_branches > 10_000);
    }

    #[test]
    fn deterministic_build() {
        assert_eq!(build(Scale::Smoke), build(Scale::Smoke));
    }
}
