//! `compress` — an LZ77-style compressor with a hash probe table.
//!
//! SPECint95 `compress` (LZW) spends nearly all of its time in one tight
//! code/hash loop; its 0.1% hot set captures 99.6% of the flow over only
//! 230 distinct paths (Table 1). This workload reproduces that profile
//! shape: a single dominant outer loop (hash probe → match/literal) with a
//! short match-extension inner loop, over a highly redundant generated
//! input.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{BinOp, CmpOp, GlobalReg, Program};

use crate::build_util::DataLayout;
use crate::scale::Scale;

const HASH_BITS: usize = 12;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Builds the `compress` workload at `scale`.
pub fn build(scale: Scale) -> Program {
    let n = scale.pick(3_000, 80_000, 1_200_000);
    let input = generate_input(n, 0xC0_4711);

    let mut dl = DataLayout::new();
    let in_base = dl.array(n + 8); // padded so IN[i+1] is always in range
    let ht_base = dl.array(HASH_SIZE);
    let out_base = dl.array(2 * n + 16);

    let mut fb = FunctionBuilder::new("main");
    // Registers.
    let nn = fb.imm(n as i64);
    let i = fb.imm(0);
    let o = fb.imm(0);
    let in_b = fb.imm(in_base as i64);
    let ht_b = fb.imm(ht_base as i64);
    let out_b = fb.imm(out_base as i64);
    let cur = fb.reg();
    let nxt = fb.reg();
    let h = fb.reg();
    let cand = fb.reg();
    let addr = fb.reg();
    let tmp = fb.reg();
    let mlen = fb.reg();
    let lit_count = fb.imm(0);
    let match_count = fb.imm(0);

    // Blocks in layout order.
    let header = fb.new_block();
    let body = fb.new_block();
    let have_cand = fb.new_block();
    let try_match = fb.new_block();
    let ext_header = fb.new_block();
    let ext_body = fb.new_block();
    let ext_done = fb.new_block();
    let emit_match = fb.new_block();
    let emit_literal = fb.new_block();
    let lit_classes: Vec<_> = (0..8).map(|_| fb.new_block()).collect();
    let lit_join = fb.new_block();
    let advance = fb.new_block();
    let exit = fb.new_block();

    fb.jump(header);

    // while i < n
    fb.switch_to(header);
    let c = fb.cmp(CmpOp::Lt, i, nn);
    fb.branch(c, body, exit);

    // body: hash of (IN[i], IN[i+1]); probe and update the table.
    fb.switch_to(body);
    fb.add(addr, in_b, i);
    fb.load(cur, addr, 0);
    fb.load(nxt, addr, 1);
    fb.mul_imm(h, cur, 31);
    fb.add(h, h, nxt);
    fb.and_imm(h, h, (HASH_SIZE - 1) as i64);
    fb.add(addr, ht_b, h);
    fb.load(cand, addr, 0); // previous position + 1, 0 = empty
    fb.add_imm(tmp, i, 1);
    fb.store(tmp, addr, 0);
    let has = fb.cmp_imm(CmpOp::Gt, cand, 0);
    fb.branch(has, have_cand, emit_literal);

    // candidate position = cand - 1; verify first symbol matches.
    fb.switch_to(have_cand);
    fb.add_imm(cand, cand, -1);
    fb.add(addr, in_b, cand);
    fb.load(tmp, addr, 0);
    let eq = fb.cmp(CmpOp::Eq, tmp, cur);
    fb.branch(eq, try_match, emit_literal);

    // match extension: mlen = 0; while i+mlen < n && IN[cand+mlen] ==
    // IN[i+mlen] && mlen < 64.
    fb.switch_to(try_match);
    fb.const_(mlen, 0);
    fb.jump(ext_header);

    fb.switch_to(ext_header);
    fb.add(tmp, i, mlen);
    let in_range = fb.cmp(CmpOp::Lt, tmp, nn);
    let below_cap = fb.cmp_imm(CmpOp::Lt, mlen, 64);
    fb.bin(BinOp::And, in_range, in_range, below_cap);
    fb.branch(in_range, ext_body, ext_done);

    fb.switch_to(ext_body);
    fb.add(addr, in_b, tmp);
    let a_sym = fb.reg();
    fb.load(a_sym, addr, 0);
    fb.add(addr, in_b, cand);
    fb.add(addr, addr, mlen);
    let b_sym = fb.reg();
    fb.load(b_sym, addr, 0);
    let same = fb.cmp(CmpOp::Eq, a_sym, b_sym);
    fb.add_imm(mlen, mlen, 1); // optimistic; corrected below
    fb.branch(same, ext_header, ext_done);

    // ext_done: mlen counts matched symbols + possibly one mismatch probe;
    // treat mlen >= 4 as a match worth emitting.
    fb.switch_to(ext_done);
    let worth = fb.cmp_imm(CmpOp::Ge, mlen, 4);
    fb.branch(worth, emit_match, emit_literal);

    fb.switch_to(emit_match);
    fb.add(addr, out_b, o);
    fb.store(mlen, addr, 0);
    fb.store(cand, addr, 1);
    fb.add_imm(o, o, 2);
    fb.add_imm(match_count, match_count, 1);
    fb.add_imm(tmp, mlen, -1);
    fb.add(i, i, tmp); // skip matched prefix (conservative)
    fb.jump(advance);

    fb.switch_to(emit_literal);
    // Literal coding classes (symbol frequency bands), as the real coder's
    // output stage distinguishes code lengths.
    fb.and_imm(tmp, cur, 7);
    fb.switch(tmp, lit_classes.clone(), lit_join);
    for (k, cb) in lit_classes.iter().enumerate() {
        fb.switch_to(*cb);
        fb.add_imm(lit_count, lit_count, (k % 2) as i64);
        fb.jump(lit_join);
    }
    fb.switch_to(lit_join);
    fb.add(addr, out_b, o);
    fb.store(cur, addr, 0);
    fb.add_imm(o, o, 1);
    fb.add_imm(lit_count, lit_count, 1);
    fb.jump(advance);

    fb.switch_to(advance);
    fb.add_imm(i, i, 1);
    fb.jump(header); // backward: the hot loop latch

    fb.switch_to(exit);
    fb.set_global(GlobalReg::new(0), lit_count);
    fb.set_global(GlobalReg::new(1), match_count);
    fb.set_global(GlobalReg::new(2), o);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("compress builds");
    pb.memory_words(dl.total());
    for (k, &sym) in input.iter().enumerate() {
        if sym != 0 {
            pb.datum(in_base + k, sym);
        }
    }
    pb.finish().expect("compress validates")
}

/// Highly redundant symbol stream: runs of repeated symbols with
/// occasional noise, like text fed to `compress`.
fn generate_input(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let sym = rng.gen_range(1..24i64);
        let run = if rng.gen_bool(0.8) {
            rng.gen_range(3..20)
        } else {
            1
        };
        for _ in 0..run {
            if out.len() == n {
                break;
            }
            // Occasional noise symbol keeps the match loop honest.
            if rng.gen_bool(0.03) {
                out.push(rng.gen_range(1..24i64));
            } else {
                out.push(sym);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn compress_runs_and_halts() {
        let p = build(Scale::Smoke);
        let mut vm = Vm::new(&p);
        let mut c = CountingObserver::default();
        let stats = vm.run(&mut c).unwrap();
        assert!(stats.halted);
        // It actually compressed something: literals + matches emitted.
        let lits = vm.global(GlobalReg::new(0));
        let matches = vm.global(GlobalReg::new(1));
        assert!(lits > 0);
        assert!(matches > 0, "redundant input must produce matches");
        assert!(stats.backward_transfers > 1_000);
    }

    #[test]
    fn compress_is_deterministic() {
        let p1 = build(Scale::Smoke);
        let p2 = build(Scale::Smoke);
        assert_eq!(p1, p2);
    }

    #[test]
    fn scale_grows_flow() {
        let small = build(Scale::Smoke);
        let bigger = build(Scale::Small);
        let run = |p: &Program| {
            let mut vm = Vm::new(p);
            vm.run(&mut CountingObserver::default())
                .unwrap()
                .blocks_executed
        };
        assert!(run(&bigger) > run(&small) * 5);
    }
}
