//! The nine-benchmark suite of Table 1.

use std::fmt;
use std::str::FromStr;

use hotpath_ir::Program;

use crate::scale::Scale;

/// The benchmarks of the paper's Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum WorkloadName {
    Compress,
    Gcc,
    Go,
    Ijpeg,
    Li,
    M88ksim,
    Perl,
    Vortex,
    Deltablue,
}

/// All nine workloads, in the paper's Table 1 order.
pub const ALL_WORKLOADS: [WorkloadName; 9] = [
    WorkloadName::Compress,
    WorkloadName::Gcc,
    WorkloadName::Go,
    WorkloadName::Ijpeg,
    WorkloadName::Li,
    WorkloadName::M88ksim,
    WorkloadName::Perl,
    WorkloadName::Vortex,
    WorkloadName::Deltablue,
];

impl WorkloadName {
    /// The lowercase name used in the paper's tables and our reports.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkloadName::Compress => "compress",
            WorkloadName::Gcc => "gcc",
            WorkloadName::Go => "go",
            WorkloadName::Ijpeg => "ijpeg",
            WorkloadName::Li => "li",
            WorkloadName::M88ksim => "m88ksim",
            WorkloadName::Perl => "perl",
            WorkloadName::Vortex => "vortex",
            WorkloadName::Deltablue => "deltablue",
        }
    }

    /// True for the benchmarks Dynamo processes without bailing out
    /// (Figure 5 runs these; gcc/go/ijpeg/vortex are excluded as in the
    /// paper's Figure 5).
    pub fn in_dynamo_figure(self) -> bool {
        matches!(
            self,
            WorkloadName::Compress
                | WorkloadName::M88ksim
                | WorkloadName::Perl
                | WorkloadName::Li
                | WorkloadName::Deltablue
        )
    }
}

impl fmt::Display for WorkloadName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing a workload name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseWorkloadError {
    /// The unrecognized input.
    pub input: String,
}

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload `{}`", self.input)
    }
}

impl std::error::Error for ParseWorkloadError {}

impl FromStr for WorkloadName {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_WORKLOADS
            .iter()
            .copied()
            .find(|w| w.as_str() == s)
            .ok_or_else(|| ParseWorkloadError { input: s.into() })
    }
}

/// A built benchmark: a name and a ready-to-run program (inputs embedded
/// in the data segment).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Which benchmark this is.
    pub name: WorkloadName,
    /// The scale it was built at.
    pub scale: Scale,
    /// The executable program.
    pub program: Program,
}

/// Builds one workload at `scale`.
pub fn build(name: WorkloadName, scale: Scale) -> Workload {
    let program = match name {
        WorkloadName::Compress => crate::compress::build(scale),
        WorkloadName::Gcc => crate::gcc::build(scale),
        WorkloadName::Go => crate::go::build(scale),
        WorkloadName::Ijpeg => crate::ijpeg::build(scale),
        WorkloadName::Li => crate::li::build(scale),
        WorkloadName::M88ksim => crate::m88ksim::build(scale),
        WorkloadName::Perl => crate::perl::build(scale),
        WorkloadName::Vortex => crate::vortex::build(scale),
        WorkloadName::Deltablue => crate::deltablue::build(scale),
    };
    Workload {
        name,
        scale,
        program,
    }
}

/// Builds the full nine-benchmark suite at `scale`.
pub fn suite(scale: Scale) -> Vec<Workload> {
    ALL_WORKLOADS.iter().map(|&n| build(n, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn names_roundtrip() {
        for w in ALL_WORKLOADS {
            assert_eq!(w.as_str().parse::<WorkloadName>().unwrap(), w);
        }
        assert!("nope".parse::<WorkloadName>().is_err());
    }

    #[test]
    fn dynamo_figure_set_matches_paper() {
        let in_fig: Vec<_> = ALL_WORKLOADS
            .iter()
            .filter(|w| w.in_dynamo_figure())
            .map(|w| w.as_str())
            .collect();
        assert_eq!(in_fig, ["compress", "li", "m88ksim", "perl", "deltablue"]);
    }

    #[test]
    fn whole_suite_runs_at_smoke_scale() {
        for w in suite(Scale::Smoke) {
            let mut vm = Vm::new(&w.program);
            let stats = vm
                .run(&mut CountingObserver::default())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(stats.halted, "{} halted", w.name);
            assert!(
                stats.blocks_executed > 5_000,
                "{} executed only {} blocks",
                w.name,
                stats.blocks_executed
            );
        }
    }
}
