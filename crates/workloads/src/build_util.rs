//! Shared helpers for authoring workload programs.

use hotpath_ir::builder::FunctionBuilder;
use hotpath_ir::{CmpOp, LocalBlockId, Reg};

/// Allocates disjoint regions of program data memory.
///
/// Workloads lay out their arrays with this before emitting code, then set
/// `ProgramBuilder::memory_words(layout.total())`.
#[derive(Clone, Copy, Default, Debug)]
pub struct DataLayout {
    next: usize,
}

impl DataLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves an array of `len` words, returning its base word address.
    pub fn array(&mut self, len: usize) -> usize {
        let base = self.next;
        self.next += len;
        base
    }

    /// Reserves a single word.
    pub fn word(&mut self) -> usize {
        self.array(1)
    }

    /// Total words reserved so far.
    pub fn total(&self) -> usize {
        self.next
    }
}

/// Handle for an in-construction counted loop; see [`loop_up_to`].
#[derive(Clone, Copy, Debug)]
pub struct Loop {
    /// Loop header block (the path head a NET counter will sit at).
    pub header: LocalBlockId,
    /// First body block.
    pub body: LocalBlockId,
    /// Exit block, switched to by [`end_loop`].
    pub exit: LocalBlockId,
    /// The induction variable, starting at 0.
    pub i: Reg,
}

/// Emits `for i in (0..limit)` scaffolding: allocates the induction
/// register, creates header/body/exit blocks in layout order, emits the
/// header test, and leaves the builder in the body block. Emit the body,
/// then call [`end_loop`].
///
/// The latch jump is *backward* (header precedes the body in layout), so
/// every iteration is one forward path starting at the header.
pub fn loop_up_to(fb: &mut FunctionBuilder, limit: Reg) -> Loop {
    let i = fb.reg();
    fb.const_(i, 0);
    let header = fb.new_block();
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.jump(header);
    fb.switch_to(header);
    let c = fb.cmp(CmpOp::Lt, i, limit);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    Loop {
        header,
        body,
        exit,
        i,
    }
}

/// Closes a loop opened by [`loop_up_to`]: bumps the induction variable by
/// `step`, jumps back to the header, and switches to the exit block.
///
/// # Panics
///
/// Panics (via the builder) if no block is open.
pub fn end_loop(fb: &mut FunctionBuilder, l: &Loop, step: i64) {
    fb.add_imm(l.i, l.i, step);
    fb.jump(l.header);
    fb.switch_to(l.exit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::builder::ProgramBuilder;
    use hotpath_ir::GlobalReg;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn data_layout_is_disjoint() {
        let mut dl = DataLayout::new();
        let a = dl.array(10);
        let b = dl.array(5);
        let w = dl.word();
        assert_eq!(a, 0);
        assert_eq!(b, 10);
        assert_eq!(w, 15);
        assert_eq!(dl.total(), 16);
    }

    #[test]
    fn loop_helper_builds_a_working_loop() {
        let mut fb = FunctionBuilder::new("main");
        let limit = fb.imm(7);
        let sum = fb.imm(0);
        let l = loop_up_to(&mut fb, limit);
        fb.add(sum, sum, l.i);
        end_loop(&mut fb, &l, 1);
        fb.set_global(GlobalReg::new(0), sum);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p);
        let mut counter = CountingObserver::default();
        let stats = vm.run(&mut counter).unwrap();
        assert!(stats.halted);
        assert_eq!(vm.global(GlobalReg::new(0)), 21); // 0+1+..+6
                                                      // The latch is backward: one backward transfer per iteration.
        assert_eq!(counter.backward, 7);
    }

    #[test]
    fn nested_loops_via_helper() {
        let mut fb = FunctionBuilder::new("main");
        let limit = fb.imm(4);
        let total = fb.imm(0);
        let outer = loop_up_to(&mut fb, limit);
        let inner = loop_up_to(&mut fb, limit);
        fb.add_imm(total, total, 1);
        end_loop(&mut fb, &inner, 1);
        end_loop(&mut fb, &outer, 1);
        fb.set_global(GlobalReg::new(0), total);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p);
        vm.run(&mut CountingObserver::default()).unwrap();
        assert_eq!(vm.global(GlobalReg::new(0)), 16);
    }
}
