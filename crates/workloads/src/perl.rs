//! `perl` — compiled pattern matching over generated text.
//!
//! SPECint95 `perl` interprets scripts dominated by string/regex work
//! (Table 1: 2,776 paths, 88.5% hot flow). Like perl itself, this workload
//! *compiles* its patterns: four regex-style patterns (literal chars,
//! character classes, greedy star scans, skips) are lowered to straight
//! block chains at build time, and each input string is matched against
//! the pattern its index selects. A match attempt is therefore one long
//! forward path carrying many data-dependent branch bits — the source of
//! perl's mid-thousands path population — while star scans and the
//! FNV-style hash of matched prefixes contribute tight hot inner loops.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{BinOp, CmpOp, GlobalReg, LocalBlockId, Program};

use crate::build_util::DataLayout;
use crate::scale::Scale;

const STR_LEN: usize = 48;
const ALPHABET: i64 = 16;

/// A pattern operation, compiled to blocks at build time.
#[derive(Clone, Copy, Debug)]
enum POp {
    /// Match exactly this character.
    Char(i64),
    /// Match any char whose `(1 << (ch & 7))` bit is in the mask.
    Class(i64),
    /// Greedily consume chars in the class (zero or more).
    Star(i64),
    /// Consume one char unconditionally.
    Skip,
}

/// Pre-created blocks for one compiled pattern op.
#[derive(Clone, Copy, Debug)]
enum OpBlocks {
    Consume {
        entry: LocalBlockId,
        test: LocalBlockId,
    },
    Star {
        entry: LocalBlockId,
        hdr: LocalBlockId,
        body: LocalBlockId,
    },
}

/// Builds the `perl` workload at `scale`.
pub fn build(scale: Scale) -> Program {
    let strings = scale.pick(900, 18_000, 280_000);
    let patterns = pattern_set();
    let text = generate_text(strings, 0x9E21);

    let mut dl = DataLayout::new();
    let text_base = dl.array(strings * STR_LEN);
    let hash_base = dl.array(256);

    let mut fb = FunctionBuilder::new("main");
    let n_strings = fb.imm(strings as i64);
    let text_b = fb.imm(text_base as i64);
    let hash_b = fb.imm(hash_base as i64);
    let limit = fb.imm(STR_LEN as i64);
    let matches = fb.imm(0);
    let i = fb.imm(0);
    let s_base = fb.reg();
    let sp = fb.reg();
    let ch = fb.reg();
    let addr = fb.reg();
    let tmp = fb.reg();
    let psel = fb.reg();
    let hv = fb.reg();

    // ---- create every block first, in layout order ---------------------
    let header = fb.new_block();
    let body = fb.new_block();
    let chains: Vec<(LocalBlockId, Vec<OpBlocks>)> = patterns
        .iter()
        .map(|ops| {
            let entry = fb.new_block();
            let blocks = ops
                .iter()
                .map(|op| match op {
                    POp::Star(_) => OpBlocks::Star {
                        entry: fb.new_block(),
                        hdr: fb.new_block(),
                        body: fb.new_block(),
                    },
                    _ => OpBlocks::Consume {
                        entry: fb.new_block(),
                        test: fb.new_block(),
                    },
                })
                .collect();
            (entry, blocks)
        })
        .collect();
    let match_proc = fb.new_block();
    let hash_hdr = fb.new_block();
    let hash_body = fb.new_block();
    let hash_vowel = fb.new_block();
    let hash_join = fb.new_block();
    let hash_done = fb.new_block();
    let latch = fb.new_block();
    let exit = fb.new_block();

    // ---- string loop ----------------------------------------------------
    fb.jump(header);
    fb.switch_to(header);
    let more = fb.cmp(CmpOp::Lt, i, n_strings);
    fb.branch(more, body, exit);

    fb.switch_to(body);
    fb.mul_imm(s_base, i, STR_LEN as i64);
    fb.add(s_base, s_base, text_b);
    fb.const_(sp, 0);
    fb.and_imm(psel, i, 7);
    let entries: Vec<LocalBlockId> = chains.iter().map(|(e, _)| *e).collect();
    fb.switch(psel, entries.clone(), entries[0]);

    // ---- compiled pattern chains ----------------------------------------
    for ((chain_entry, blocks), ops) in chains.iter().zip(&patterns) {
        fb.switch_to(*chain_entry);
        // The entry block immediately falls into the first op.
        let first = first_block(&blocks[0]);
        fb.jump(first);
        for (k, (op, blk)) in ops.iter().zip(blocks).enumerate() {
            let next = blocks.get(k + 1).map(first_block).unwrap_or(match_proc);
            match (op, blk) {
                (POp::Char(c), OpBlocks::Consume { entry, test }) => {
                    fb.switch_to(*entry);
                    let in_b = fb.cmp(CmpOp::Lt, sp, limit);
                    fb.branch(in_b, *test, latch);
                    fb.switch_to(*test);
                    fb.add(addr, s_base, sp);
                    fb.load(ch, addr, 0);
                    fb.add_imm(sp, sp, 1);
                    let eq = fb.cmp_imm(CmpOp::Eq, ch, *c);
                    fb.branch(eq, next, latch);
                }
                (POp::Class(mask), OpBlocks::Consume { entry, test }) => {
                    fb.switch_to(*entry);
                    let in_b = fb.cmp(CmpOp::Lt, sp, limit);
                    fb.branch(in_b, *test, latch);
                    fb.switch_to(*test);
                    fb.add(addr, s_base, sp);
                    fb.load(ch, addr, 0);
                    fb.add_imm(sp, sp, 1);
                    fb.and_imm(tmp, ch, 7);
                    let one = fb.imm(1);
                    fb.bin(BinOp::Shl, tmp, one, tmp);
                    fb.and_imm(tmp, tmp, *mask);
                    fb.branch(tmp, next, latch);
                }
                (POp::Skip, OpBlocks::Consume { entry, test }) => {
                    fb.switch_to(*entry);
                    let in_b = fb.cmp(CmpOp::Lt, sp, limit);
                    fb.branch(in_b, *test, latch);
                    fb.switch_to(*test);
                    fb.add_imm(sp, sp, 1);
                    fb.jump(next);
                }
                (POp::Star(mask), OpBlocks::Star { entry, hdr, body }) => {
                    fb.switch_to(*entry);
                    fb.jump(*hdr);
                    fb.switch_to(*hdr);
                    let in_b = fb.cmp(CmpOp::Lt, sp, limit);
                    fb.branch(in_b, *body, next);
                    fb.switch_to(*body);
                    fb.add(addr, s_base, sp);
                    fb.load(ch, addr, 0);
                    fb.and_imm(tmp, ch, 7);
                    let one = fb.imm(1);
                    fb.bin(BinOp::Shl, tmp, one, tmp);
                    fb.and_imm(tmp, tmp, *mask);
                    let cont = fb.cmp_imm(CmpOp::Ne, tmp, 0);
                    fb.add(sp, sp, cont); // advance only on a class char
                    fb.branch(cont, *hdr, next);
                }
                _ => unreachable!("op/block shape mismatch"),
            }
        }
    }

    // ---- match processing: hash the consumed prefix ----------------------
    fb.switch_to(match_proc);
    fb.add_imm(matches, matches, 1);
    fb.const_(hv, 7);
    let hi = fb.reg();
    fb.const_(hi, 0);
    fb.jump(hash_hdr);
    fb.switch_to(hash_hdr);
    let hmore = fb.cmp(CmpOp::Lt, hi, sp);
    fb.branch(hmore, hash_body, hash_done);
    fb.switch_to(hash_body);
    fb.add(addr, s_base, hi);
    fb.load(ch, addr, 0);
    fb.mul_imm(hv, hv, 33);
    fb.add(hv, hv, ch);
    fb.add_imm(hi, hi, 1);
    // A char-dependent wrinkle: "vowels" (low chars) get an extra stir.
    let vowel = fb.cmp_imm(CmpOp::Lt, ch, 3);
    fb.branch(vowel, hash_vowel, hash_join);
    fb.switch_to(hash_vowel);
    fb.xor(hv, hv, sp);
    fb.jump(hash_join);
    fb.switch_to(hash_join);
    fb.jump(hash_hdr); // backward: hash loop latch
    fb.switch_to(hash_done);
    fb.and_imm(hv, hv, 255);
    fb.add(addr, hash_b, hv);
    fb.load(tmp, addr, 0);
    fb.add_imm(tmp, tmp, 1);
    fb.store(tmp, addr, 0);
    fb.jump(latch);

    // ---- per-string latch -------------------------------------------------
    fb.switch_to(latch);
    fb.add_imm(i, i, 1);
    fb.jump(header); // backward: string loop latch
    fb.switch_to(exit);
    fb.set_global(GlobalReg::new(0), matches);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("perl builds");
    pb.memory_words(dl.total());
    for (k, &c) in text.iter().enumerate() {
        if c != 0 {
            pb.datum(text_base + k, c);
        }
    }
    pb.finish().expect("perl validates")
}

fn first_block(b: &OpBlocks) -> LocalBlockId {
    match b {
        OpBlocks::Consume { entry, .. } => *entry,
        OpBlocks::Star { entry, .. } => *entry,
    }
}

/// Eight fixed patterns; long class/char runs between stars give each
/// match attempt many independent branch bits.
fn pattern_set() -> Vec<Vec<POp>> {
    vec![
        vec![
            POp::Char(5),
            POp::Class(0b0011_0110),
            POp::Class(0b0111_0111),
            POp::Star(0b0000_1111),
            POp::Skip,
            POp::Class(0b1100_1100),
            POp::Class(0b1010_1010),
            POp::Char(2),
        ],
        vec![
            POp::Class(0b0101_0101),
            POp::Class(0b0011_1100),
            POp::Star(0b0011_0011),
            POp::Char(2),
            POp::Skip,
            POp::Class(0b1111_0000),
            POp::Class(0b0110_1001),
            POp::Skip,
            POp::Class(0b0000_1111),
        ],
        vec![
            POp::Star(0b1110_0000),
            POp::Char(1),
            POp::Class(0b0000_1111),
            POp::Class(0b0011_0011),
            POp::Star(0b0101_1010),
            POp::Char(4),
            POp::Class(0b1100_0011),
        ],
        vec![
            POp::Skip,
            POp::Skip,
            POp::Class(0b0110_0110),
            POp::Char(7),
            POp::Class(0b0101_1111),
            POp::Star(0b0000_0111),
            POp::Class(0b1111_1100),
        ],
        vec![
            POp::Class(0b0000_1111),
            POp::Class(0b0011_0110),
            POp::Class(0b0110_1100),
            POp::Class(0b1100_1001),
            POp::Star(0b0011_1111),
            POp::Char(1),
        ],
        vec![
            POp::Char(2),
            POp::Star(0b0101_0101),
            POp::Class(0b1010_1010),
            POp::Skip,
            POp::Class(0b0110_0110),
            POp::Char(5),
            POp::Class(0b0011_0011),
        ],
        vec![
            POp::Skip,
            POp::Class(0b1111_0000),
            POp::Class(0b0000_1111),
            POp::Star(0b1100_1100),
            POp::Class(0b0101_1010),
            POp::Class(0b1001_0110),
            POp::Char(4),
        ],
        vec![
            POp::Char(7),
            POp::Class(0b0110_1001),
            POp::Skip,
            POp::Star(0b0000_1111),
            POp::Class(0b1110_0111),
            POp::Class(0b0011_1100),
            POp::Skip,
            POp::Char(1),
        ],
    ]
}

/// Corpus biased so most strings match pattern prefixes (hot flow) while
/// failures spread across positions.
fn generate_text(strings: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut text = Vec::with_capacity(strings * STR_LEN);
    for _ in 0..strings {
        let friendly = rng.gen_bool(0.7);
        for k in 0..STR_LEN {
            let ch = if friendly && k == 0 {
                [5i64, 1, 2, 7][rng.gen_range(0..4usize)]
            } else if friendly && k < 24 {
                [1i64, 2, 4, 5, 7, 3][rng.gen_range(0..6usize)]
            } else {
                rng.gen_range(0..ALPHABET)
            };
            text.push(ch);
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn perl_runs_and_matches_some_strings() {
        let p = build(Scale::Smoke);
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut CountingObserver::default()).unwrap();
        assert!(stats.halted);
        let m = vm.global(GlobalReg::new(0));
        assert!(m > 0, "some strings match");
        assert!((m as usize) < 700, "not everything matches");
    }

    #[test]
    fn patterns_all_end_with_consuming_ops() {
        for ops in pattern_set() {
            assert!(ops.len() >= 6);
        }
        assert_eq!(pattern_set().len(), 8);
    }

    #[test]
    fn deterministic_build() {
        assert_eq!(build(Scale::Smoke), build(Scale::Smoke));
    }
}
