//! `gcc` — a three-pass statement processor with weakly-biased branching.
//!
//! SPECint95 `gcc` is the outlier of Table 1: 36,738 paths and a 0.1% hot
//! set capturing only 47.5% of the flow — no dominant paths. This workload
//! reproduces that regime: each input statement flows through parse /
//! analyze / emit passes whose branches test near-uniform random flag
//! bits, so each iteration's path is one of tens of thousands of weakly
//! weighted shapes.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{BinOp, GlobalReg, Program};

use crate::build_util::{end_loop, loop_up_to, DataLayout};
use crate::scale::Scale;

const NUM_OPS: usize = 16;

/// Builds the `gcc` workload at `scale`.
pub fn build(scale: Scale) -> Program {
    let n = scale.pick(2_000, 70_000, 1_100_000);
    let stmts = generate_statements(n, 0x6CC);

    let mut dl = DataLayout::new();
    let stmts_base = dl.array(n);
    let sym_base = dl.array(256);

    let mut fb = FunctionBuilder::new("main");
    let nn = fb.imm(n as i64);
    let stmts_b = fb.imm(stmts_base as i64);
    let sym_b = fb.imm(sym_base as i64);
    let emitted = fb.imm(0);
    let w = fb.reg();
    let op = fb.reg();
    let flags = fb.reg();
    let class = fb.reg();
    let addr = fb.reg();
    let tmp = fb.reg();
    let bit = fb.reg();

    let main_loop = loop_up_to(&mut fb, nn);
    // Fetch statement.
    fb.add(addr, stmts_b, main_loop.i);
    fb.load(w, addr, 0);
    fb.and_imm(op, w, (NUM_OPS - 1) as i64);
    fb.shr_imm(flags, w, 4);

    // ---- pass 1: parse — per-opcode handler ---------------------------
    // Create blocks in layout order: handlers and their sub-blocks first,
    // the join last, so every jump into the join is forward.
    let handlers: Vec<_> = (0..NUM_OPS).map(|_| fb.new_block()).collect();
    let subs: Vec<Option<(hotpath_ir::LocalBlockId, hotpath_ir::LocalBlockId)>> = (0..NUM_OPS)
        .map(|k| {
            if k % 3 == 0 {
                Some((fb.new_block(), fb.new_block()))
            } else {
                None
            }
        })
        .collect();
    let join1 = fb.new_block();
    fb.switch(op, handlers.clone(), join1);
    for (k, h) in handlers.iter().enumerate() {
        fb.switch_to(*h);
        fb.const_(class, (k % 4) as i64);
        if let Some((sub_t, sub_f)) = subs[k] {
            // Some opcodes inspect an extra flag bit.
            fb.and_imm(bit, flags, 1 << (k % 8));
            fb.branch(bit, sub_t, sub_f);
            fb.switch_to(sub_t);
            fb.add_imm(class, class, 4);
            fb.jump(join1);
            fb.switch_to(sub_f);
            fb.jump(join1);
        } else {
            fb.jump(join1);
        }
    }
    fb.switch_to(join1);

    // ---- pass 2: analyze — four near-uniform flag branches -------------
    let mut cur_join = join1;
    for k in 0..4 {
        let t = fb.new_block();
        let f = fb.new_block();
        let join = fb.new_block();
        fb.and_imm(bit, flags, 1 << (8 + k));
        fb.branch(bit, t, f);
        fb.switch_to(t);
        fb.add_imm(class, class, 1);
        fb.jump(join);
        fb.switch_to(f);
        fb.mul_imm(tmp, class, 3);
        fb.jump(join);
        fb.switch_to(join);
        cur_join = join;
    }
    let _ = cur_join;

    // ---- pass 3: emit — class-indexed table + operand scan loop --------
    let emit_handlers: Vec<_> = (0..8).map(|_| fb.new_block()).collect();
    let join3 = fb.new_block();
    fb.and_imm(tmp, class, 7);
    fb.switch(tmp, emit_handlers.clone(), join3);
    for (k, h) in emit_handlers.iter().enumerate() {
        fb.switch_to(*h);
        fb.add(addr, sym_b, tmp);
        fb.bin_imm(BinOp::And, addr, addr, 0xFF);
        fb.add(addr, sym_b, bit); // deterministic but flag-dependent slot
        fb.and_imm(addr, addr, i64::MAX);
        fb.add_imm(emitted, emitted, (k + 1) as i64);
        fb.jump(join3);
    }
    fb.switch_to(join3);
    // Operand scan: trip = popcount-ish of flags low nibble (0..4).
    let trips = fb.reg();
    fb.const_(trips, 0);
    for k in 0..4 {
        let t = fb.new_block();
        let join = fb.new_block();
        fb.and_imm(bit, flags, 1 << (12 + k));
        fb.branch(bit, t, join);
        fb.switch_to(t);
        fb.add_imm(trips, trips, 1);
        fb.jump(join);
        fb.switch_to(join);
    }
    let scan = loop_up_to(&mut fb, trips);
    fb.and_imm(tmp, flags, 0xFF);
    fb.add(addr, sym_b, tmp);
    fb.load(tmp, addr, 0);
    fb.add_imm(tmp, tmp, 1);
    fb.store(tmp, addr, 0);
    end_loop(&mut fb, &scan, 1);

    end_loop(&mut fb, &main_loop, 1);
    fb.set_global(GlobalReg::new(0), emitted);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("gcc builds");
    pb.memory_words(dl.total());
    for (k, &s) in stmts.iter().enumerate() {
        if s != 0 {
            pb.datum(stmts_base + k, s);
        }
    }
    pb.finish().expect("gcc validates")
}

/// Statements with near-uniform opcodes and flag bits — the flat branch
/// distribution behind gcc's weak path dominance.
fn generate_statements(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let op = rng.gen_range(0..NUM_OPS as i64);
            let flags = rng.gen_range(0..1 << 16) as i64;
            op | (flags << 4)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn gcc_runs_and_halts() {
        let p = build(Scale::Smoke);
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut CountingObserver::default()).unwrap();
        assert!(stats.halted);
        assert!(vm.global(GlobalReg::new(0)) > 0);
        assert!(stats.indirect_branches > 2_000, "two switches per stmt");
    }

    #[test]
    fn deterministic_build() {
        assert_eq!(build(Scale::Smoke), build(Scale::Smoke));
    }
}
