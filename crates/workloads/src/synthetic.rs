//! Parameterized synthetic loop programs for controlled experiments.
//!
//! The nine named workloads have fixed structure; ablation studies need a
//! knob for *exactly* how many independent branches a loop body has and
//! how biased each is. [`build`] produces a single loop of `trips`
//! iterations whose body evaluates `branches` two-way decisions against a
//! pre-generated random word stream; per-branch bias is set by
//! [`SyntheticSpec::bias_percent`].
//!
//! With high bias the loop has one dominant path (compress-like); with 50%
//! bias and many branches the path space explodes with flat weights
//! (gcc-like). The crossover benches sweep between the two.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{GlobalReg, Program};

use crate::build_util::{end_loop, loop_up_to, DataLayout};

/// Parameters for [`build`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyntheticSpec {
    /// Loop iterations.
    pub trips: u32,
    /// Independent two-way branches per iteration (1..=24).
    pub branches: u32,
    /// Probability (percent) that each branch takes its hot arm.
    pub bias_percent: u32,
    /// RNG seed for the decision stream.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            trips: 10_000,
            branches: 8,
            bias_percent: 90,
            seed: 7,
        }
    }
}

/// Builds a synthetic loop program from `spec`.
///
/// # Panics
///
/// Panics if `branches` is 0 or greater than 24, or `bias_percent > 100`.
pub fn build(spec: &SyntheticSpec) -> Program {
    assert!(
        (1..=24).contains(&spec.branches),
        "branches must be in 1..=24, got {}",
        spec.branches
    );
    assert!(
        spec.bias_percent <= 100,
        "bias_percent must be <= 100, got {}",
        spec.bias_percent
    );

    // Decision words: bit k of DATA[i] decides branch k of iteration i.
    let mut rng = Rng64::seed_from_u64(spec.seed);
    let data: Vec<i64> = (0..spec.trips)
        .map(|_| {
            let mut w = 0i64;
            for k in 0..spec.branches {
                if rng.gen_range(0u32..100) < spec.bias_percent {
                    w |= 1 << k;
                }
            }
            w
        })
        .collect();

    let mut dl = DataLayout::new();
    let data_base = dl.array(spec.trips as usize);

    let mut fb = FunctionBuilder::new("main");
    let trips = fb.imm(spec.trips as i64);
    let data_b = fb.imm(data_base as i64);
    let acc = fb.imm(0);
    let w = fb.reg();
    let bit = fb.reg();
    let addr = fb.reg();

    let l = loop_up_to(&mut fb, trips);
    fb.add(addr, data_b, l.i);
    fb.load(w, addr, 0);
    for k in 0..spec.branches {
        let hot = fb.new_block();
        let cold = fb.new_block();
        let join = fb.new_block();
        fb.and_imm(bit, w, 1 << k);
        fb.branch(bit, hot, cold);
        fb.switch_to(hot);
        fb.add_imm(acc, acc, 1);
        fb.jump(join);
        fb.switch_to(cold);
        fb.add_imm(acc, acc, 3);
        fb.jump(join);
        fb.switch_to(join);
    }
    end_loop(&mut fb, &l, 1);
    fb.set_global(GlobalReg::new(0), acc);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("synthetic builds");
    pb.memory_words(dl.total());
    for (k, &v) in data.iter().enumerate() {
        if v != 0 {
            pb.datum(data_base + k, v);
        }
    }
    pb.finish().expect("synthetic validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn synthetic_runs() {
        let p = build(&SyntheticSpec {
            trips: 500,
            ..SyntheticSpec::default()
        });
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut CountingObserver::default()).unwrap();
        assert!(stats.halted);
        // One backward latch per iteration.
        assert_eq!(stats.backward_transfers, 500);
    }

    #[test]
    fn full_bias_funnels_into_one_path() {
        let p = build(&SyntheticSpec {
            trips: 100,
            branches: 6,
            bias_percent: 100,
            seed: 3,
        });
        let mut vm = Vm::new(&p);
        vm.run(&mut CountingObserver::default()).unwrap();
        // acc = 100 iterations * 6 hot arms * 1
        assert_eq!(vm.global(GlobalReg::new(0)), 600);
    }

    #[test]
    fn zero_bias_funnels_into_cold_arms() {
        let p = build(&SyntheticSpec {
            trips: 50,
            branches: 4,
            bias_percent: 0,
            seed: 3,
        });
        let mut vm = Vm::new(&p);
        vm.run(&mut CountingObserver::default()).unwrap();
        assert_eq!(vm.global(GlobalReg::new(0)), 50 * 4 * 3);
    }

    #[test]
    #[should_panic(expected = "branches must be")]
    fn too_many_branches_panics() {
        let _ = build(&SyntheticSpec {
            branches: 25,
            ..SyntheticSpec::default()
        });
    }
}
