//! `deltablue` — an incremental one-way constraint solver.
//!
//! The paper's ninth benchmark is DeltaBlue, the incremental constraint
//! solver of Sannella et al. (Table 1: 505 paths, 93.9% hot flow). This
//! workload keeps a graph of unary `dst = src + offset` constraints with
//! strengths; each round perturbs one constraint's strength and re-plans:
//! it walks the affected chain, comparing walkabout strengths and
//! propagating values downstream — the same scan/compare/propagate loops
//! that dominate the real DeltaBlue.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{CmpOp, GlobalReg, Program};

use crate::build_util::{end_loop, loop_up_to, DataLayout};
use crate::scale::Scale;

const VARS: usize = 96;
const CONS: usize = 160;

/// Builds the `deltablue` workload at `scale`.
pub fn build(scale: Scale) -> Program {
    let rounds = scale.pick(60, 1_300, 20_000);
    let (cons, perturb) = generate_graph(rounds, 0xDE17AB);

    // Variable arrays: value, walk strength, determined-by constraint + 1.
    let mut dl = DataLayout::new();
    let val_base = dl.array(VARS);
    let walk_base = dl.array(VARS);
    let det_base = dl.array(VARS);
    // Constraint arrays: src, dst, strength, offset, enabled.
    let csrc_base = dl.array(CONS);
    let cdst_base = dl.array(CONS);
    let cstr_base = dl.array(CONS);
    let coff_base = dl.array(CONS);
    let cen_base = dl.array(CONS);
    let pert_base = dl.array(rounds);

    let mut fb = FunctionBuilder::new("main");
    let nrounds = fb.imm(rounds as i64);
    let ncons = fb.imm(CONS as i64);
    let val_b = fb.imm(val_base as i64);
    let walk_b = fb.imm(walk_base as i64);
    let det_b = fb.imm(det_base as i64);
    let csrc_b = fb.imm(csrc_base as i64);
    let cdst_b = fb.imm(cdst_base as i64);
    let cstr_b = fb.imm(cstr_base as i64);
    let coff_b = fb.imm(coff_base as i64);
    let cen_b = fb.imm(cen_base as i64);
    let pert_b = fb.imm(pert_base as i64);
    let applied = fb.imm(0);
    let addr = fb.reg();
    let c = fb.reg();
    let src = fb.reg();
    let dst = fb.reg();
    let stren = fb.reg();
    let off = fb.reg();
    let en = fb.reg();
    let tmp = fb.reg();
    let sval = fb.reg();
    let dwalk = fb.reg();

    let round_loop = loop_up_to(&mut fb, nrounds);
    // Perturb: constraint p gets a new strength derived from the round.
    fb.add(addr, pert_b, round_loop.i);
    fb.load(c, addr, 0);
    fb.rem_imm(tmp, round_loop.i, 7);
    fb.add_imm(tmp, tmp, 1);
    fb.add(addr, cstr_b, c);
    fb.store(tmp, addr, 0);

    // Planner sweep: try to (re)apply every enabled constraint in index
    // order; apply when its strength beats the destination's walkabout
    // strength.
    let sweep = loop_up_to(&mut fb, ncons);
    let enabled_b = fb.new_block();
    let try_b = fb.new_block();
    let apply_b = fb.new_block();
    let skip_b = fb.new_block();
    // `skip_b_real` is created inside the apply emission (after apply's
    // sub-blocks) so every jump into it is forward; `skip_b` trampolines.
    fb.add(addr, cen_b, sweep.i);
    fb.load(en, addr, 0);
    fb.branch(en, enabled_b, skip_b);

    fb.switch_to(enabled_b);
    fb.add(addr, csrc_b, sweep.i);
    fb.load(src, addr, 0);
    fb.add(addr, cdst_b, sweep.i);
    fb.load(dst, addr, 0);
    fb.add(addr, cstr_b, sweep.i);
    fb.load(stren, addr, 0);
    fb.add(addr, walk_b, dst);
    fb.load(dwalk, addr, 0);
    let beats = fb.cmp(CmpOp::Gt, stren, dwalk);
    fb.branch(beats, try_b, skip_b);

    fb.switch_to(try_b);
    // Respect determination: do not steal a variable determined by a
    // stronger constraint this sweep (dwalk check covered that); avoid
    // self-loops src == dst.
    let selfy = fb.cmp(CmpOp::Eq, src, dst);
    fb.branch(selfy, skip_b, apply_b);

    fb.switch_to(apply_b);
    // Strength-class dispatch (required/strong/.../weakest), like the real
    // DeltaBlue's strength lattice comparisons.
    let s_classes: Vec<_> = (0..8).map(|_| fb.new_block()).collect();
    let s_join = fb.new_block();
    let val_up = fb.new_block();
    let val_down = fb.new_block();
    let val_join = fb.new_block();
    let skip_b2 = fb.new_block();
    let skip_b_real = fb.new_block();
    fb.and_imm(tmp, stren, 7);
    fb.switch(tmp, s_classes.clone(), s_join);
    for (k, cb) in s_classes.iter().enumerate() {
        fb.switch_to(*cb);
        fb.add_imm(applied, applied, (k % 2) as i64);
        fb.jump(s_join);
    }
    fb.switch_to(s_join);
    fb.add(addr, coff_b, sweep.i);
    fb.load(off, addr, 0);
    fb.add(addr, val_b, src);
    fb.load(sval, addr, 0);
    fb.add(sval, sval, off);
    // Did the propagated value move the destination up or down?
    fb.add(addr, val_b, dst);
    fb.load(tmp, addr, 0);
    let grew = fb.cmp(CmpOp::Gt, sval, tmp);
    fb.branch(grew, val_up, val_down);
    fb.switch_to(val_up);
    fb.store(sval, addr, 0);
    fb.jump(val_join);
    fb.switch_to(val_down);
    fb.store(sval, addr, 0);
    fb.jump(val_join);
    fb.switch_to(val_join);
    fb.add(addr, walk_b, dst);
    fb.store(stren, addr, 0);
    fb.add_imm(tmp, sweep.i, 1);
    fb.add(addr, det_b, dst);
    fb.store(tmp, addr, 0);
    fb.add_imm(applied, applied, 1);
    fb.jump(skip_b2);

    fb.switch_to(skip_b2);
    fb.jump(skip_b_real);
    // Earlier skip branches land on the trampoline.
    fb.switch_to(skip_b);
    fb.jump(skip_b_real);
    fb.switch_to(skip_b_real);
    end_loop(&mut fb, &sweep, 1);

    // Decay walkabout strengths so later rounds re-plan (phase-like churn).
    let nvars = fb.imm(VARS as i64);
    let decay = loop_up_to(&mut fb, nvars);
    fb.add(addr, walk_b, decay.i);
    fb.load(tmp, addr, 0);
    fb.shr_imm(tmp, tmp, 1);
    fb.store(tmp, addr, 0);
    end_loop(&mut fb, &decay, 1);

    end_loop(&mut fb, &round_loop, 1);
    fb.set_global(GlobalReg::new(0), applied);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("deltablue builds");
    pb.memory_words(dl.total());
    for (k, con) in cons.iter().enumerate() {
        if con.src != 0 {
            pb.datum(csrc_base + k, con.src);
        }
        if con.dst != 0 {
            pb.datum(cdst_base + k, con.dst);
        }
        pb.datum(cstr_base + k, con.strength);
        if con.offset != 0 {
            pb.datum(coff_base + k, con.offset);
        }
        pb.datum(cen_base + k, 1);
    }
    for (k, &p) in perturb.iter().enumerate() {
        if p != 0 {
            pb.datum(pert_base + k, p);
        }
    }
    pb.finish().expect("deltablue validates")
}

#[derive(Clone, Copy, Debug)]
struct Constraint {
    src: i64,
    dst: i64,
    strength: i64,
    offset: i64,
}

/// Mostly-chain constraint graph (variable k feeds k+1) with some random
/// cross edges, plus the perturbation schedule.
fn generate_graph(rounds: usize, seed: u64) -> (Vec<Constraint>, Vec<i64>) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut cons = Vec::with_capacity(CONS);
    for k in 0..CONS {
        let (src, dst) = if k < VARS - 1 {
            (k as i64, (k + 1) as i64)
        } else {
            let s = rng.gen_range(0..VARS as i64);
            let mut d = rng.gen_range(0..VARS as i64);
            if d == s {
                d = (d + 1) % VARS as i64;
            }
            (s, d)
        };
        cons.push(Constraint {
            src,
            dst,
            strength: rng.gen_range(1..8),
            offset: rng.gen_range(-5..6),
        });
    }
    let perturb = (0..rounds)
        .map(|_| {
            // Perturbations favor the head of the chain, whose effects
            // cascade furthest.
            if rng.gen_bool(0.6) {
                rng.gen_range(0..16i64)
            } else {
                rng.gen_range(0..CONS as i64)
            }
        })
        .collect();
    (cons, perturb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn deltablue_applies_constraints() {
        let p = build(Scale::Smoke);
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut CountingObserver::default()).unwrap();
        assert!(stats.halted);
        assert!(vm.global(GlobalReg::new(0)) > 100, "constraints applied");
    }

    #[test]
    fn graph_has_chain_backbone() {
        let (cons, _) = generate_graph(10, 1);
        for (k, c) in cons.iter().take(VARS - 1).enumerate() {
            assert_eq!(c.src, k as i64);
            assert_eq!(c.dst, (k + 1) as i64);
        }
    }

    #[test]
    fn deterministic_build() {
        assert_eq!(build(Scale::Smoke), build(Scale::Smoke));
    }
}
