//! `li` — a recursive tree-walking expression interpreter.
//!
//! SPECint95 `li` is a Lisp interpreter: its hot flow is the recursive
//! `eval` over cons cells (Table 1: 1,391 paths, 93.8% hot). Here a forest
//! of expression trees lives in memory as `(tag, a, b)` triples and a
//! recursive `eval` function walks them; the evaluation environment is
//! re-seeded every outer iteration so `If` nodes flip occasionally, giving
//! the path profile its realistic warm spread.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{BinOp, CmpOp, GlobalReg, Program};

use crate::build_util::{end_loop, loop_up_to, DataLayout};
use crate::scale::Scale;

// Node tags.
const T_CONST: i64 = 0;
const T_VAR: i64 = 1;
const T_ADD: i64 = 2;
const T_SUB: i64 = 3;
const T_MUL: i64 = 4;
const T_IF: i64 = 5;
const T_MAX2: i64 = 6;

const ENV_SIZE: usize = 32;

/// One expression node.
#[derive(Clone, Copy, Debug)]
struct Node {
    tag: i64,
    a: i64,
    b: i64,
}

/// Builds the `li` workload at `scale`.
pub fn build(scale: Scale) -> Program {
    let iterations = scale.pick(60, 1_200, 12_000) as i64;
    let (nodes, roots) = generate_forest(0x11_57, 24, 7);

    let mut dl = DataLayout::new();
    let nodes_base = dl.array(nodes.len() * 3);
    let roots_base = dl.array(roots.len());
    let env_base = dl.array(ENV_SIZE);

    let mut pb = ProgramBuilder::new();
    let eval = pb.declare("eval");

    // ---- eval(node_addr in g0) -> value in g1 -------------------------
    // Layout the callee FIRST so calls to it are backward (they do not end
    // paths under the default rule; recursion closes paths at returns).
    let mut eb = FunctionBuilder::new("eval");
    let node = eb.reg();
    eb.get_global(node, GlobalReg::new(0));
    let tag = eb.reg();
    let a = eb.reg();
    let b = eb.reg();
    let tmp = eb.reg();
    let left = eb.reg();
    eb.load(tag, node, 0);
    eb.load(a, node, 1);
    eb.load(b, node, 2);

    let h_const = eb.new_block();
    let h_var = eb.new_block();
    let h_add = eb.new_block();
    let h_add2 = eb.new_block();
    let h_add3 = eb.new_block();
    let h_sub = eb.new_block();
    let h_sub2 = eb.new_block();
    let h_sub3 = eb.new_block();
    let h_mul = eb.new_block();
    let h_mul2 = eb.new_block();
    let h_mul3 = eb.new_block();
    let h_if = eb.new_block();
    let h_if_then = eb.new_block();
    let h_if_else = eb.new_block();
    let h_if_done = eb.new_block();
    let h_max = eb.new_block();
    let h_max2 = eb.new_block();
    let h_max_pick = eb.new_block();
    let h_max_a = eb.new_block();
    let h_max_b = eb.new_block();
    let bad = eb.new_block();
    eb.switch(
        tag,
        vec![h_const, h_var, h_add, h_sub, h_mul, h_if, h_max],
        bad,
    );

    eb.switch_to(h_const);
    eb.set_global(GlobalReg::new(1), a);
    eb.ret();

    eb.switch_to(h_var);
    let env_b = eb.imm(env_base as i64);
    eb.add(tmp, env_b, a);
    eb.load(tmp, tmp, 0);
    eb.set_global(GlobalReg::new(1), tmp);
    eb.ret();

    // Binary operators: eval(a); save; eval(b); combine.
    let emit_binop = |eb: &mut FunctionBuilder,
                      entry: hotpath_ir::LocalBlockId,
                      cont1: hotpath_ir::LocalBlockId,
                      cont2: hotpath_ir::LocalBlockId,
                      op: BinOp| {
        eb.switch_to(entry);
        eb.set_global(GlobalReg::new(0), a);
        eb.call(eval, cont1);
        eb.switch_to(cont1);
        eb.get_global(left, GlobalReg::new(1));
        // Stash left on the shadow stack in g2-free style: keep in a local
        // register (frames are per-call, so recursion is safe).
        eb.set_global(GlobalReg::new(0), b);
        eb.call(eval, cont2);
        eb.switch_to(cont2);
        eb.get_global(tmp, GlobalReg::new(1));
        eb.bin(op, tmp, left, tmp);
        eb.set_global(GlobalReg::new(1), tmp);
        eb.ret();
    };
    emit_binop(&mut eb, h_add, h_add2, h_add3, BinOp::Add);
    emit_binop(&mut eb, h_sub, h_sub2, h_sub3, BinOp::Sub);
    emit_binop(&mut eb, h_mul, h_mul2, h_mul3, BinOp::Mul);

    // If: eval(a); pick b (then-addr) or node[2] ... encode: a = cond
    // node, b packs then/else as then*2^20+else? Keep three loads: tag, a,
    // b with b = then node and the else node stored at b+? Use convention:
    // IF: a = cond node addr, b = then node addr, and else node addr is
    // b + 3 (the generator allocates then/else adjacently).
    eb.switch_to(h_if);
    eb.set_global(GlobalReg::new(0), a);
    eb.call(eval, h_if_done);
    eb.switch_to(h_if_done);
    eb.get_global(tmp, GlobalReg::new(1));
    let nonzero = eb.cmp_imm(CmpOp::Ne, tmp, 0);
    eb.branch(nonzero, h_if_then, h_if_else);
    eb.switch_to(h_if_then);
    eb.set_global(GlobalReg::new(0), b);
    eb.call(eval, h_max_pick); // tail-continue: reuse a shared ret block
    eb.switch_to(h_if_else);
    eb.add_imm(tmp, b, 3);
    eb.set_global(GlobalReg::new(0), tmp);
    eb.call(eval, h_max_pick);

    // Max2: eval both, return the larger (two result-dependent paths).
    eb.switch_to(h_max);
    eb.set_global(GlobalReg::new(0), a);
    eb.call(eval, h_max2);
    eb.switch_to(h_max2);
    eb.get_global(left, GlobalReg::new(1));
    eb.set_global(GlobalReg::new(0), b);
    eb.call(eval, h_max_a);
    eb.switch_to(h_max_a);
    eb.get_global(tmp, GlobalReg::new(1));
    let bigger = eb.cmp(CmpOp::Gt, left, tmp);
    eb.branch(bigger, h_max_b, h_max_pick);
    eb.switch_to(h_max_b);
    eb.set_global(GlobalReg::new(1), left);
    eb.ret();
    // Shared return: g1 already holds the result.
    eb.switch_to(h_max_pick);
    eb.ret();

    eb.switch_to(bad);
    eb.set_global(GlobalReg::new(1), tmp);
    eb.ret();

    pb.add_function(eb).expect("eval builds");

    // ---- main ----------------------------------------------------------
    let mut fb = FunctionBuilder::new("main");
    let iters = fb.imm(iterations);
    let acc = fb.imm(0);
    let roots_n = fb.imm(roots.len() as i64);
    let roots_b = fb.imm(roots_base as i64);
    let env_b = fb.imm(env_base as i64);
    let addr = fb.reg();
    let tmp = fb.reg();

    let outer = loop_up_to(&mut fb, iters);
    {
        // Refresh the environment: env[k] = (iter * k) % 7 - 3 keeps If
        // conditions flipping between iterations.
        let envn = fb.imm(ENV_SIZE as i64);
        let fill = loop_up_to(&mut fb, envn);
        fb.mul(tmp, outer.i, fill.i);
        fb.add_imm(tmp, tmp, 1);
        fb.rem_imm(tmp, tmp, 7);
        fb.add_imm(tmp, tmp, -3);
        fb.add(addr, env_b, fill.i);
        fb.store(tmp, addr, 0);
        end_loop(&mut fb, &fill, 1);

        // Evaluate every root.
        let scan = loop_up_to(&mut fb, roots_n);
        fb.add(addr, roots_b, scan.i);
        fb.load(tmp, addr, 0);
        fb.set_global(GlobalReg::new(0), tmp);
        let cont = fb.new_block();
        fb.call(eval, cont);
        fb.switch_to(cont);
        fb.get_global(tmp, GlobalReg::new(1));
        fb.add(acc, acc, tmp);
        end_loop(&mut fb, &scan, 1);
    }
    end_loop(&mut fb, &outer, 1);
    fb.set_global(GlobalReg::new(0), acc);
    fb.halt();
    pb.add_function(fb).expect("main builds");
    pb.set_entry(hotpath_ir::FuncId::new(1));

    pb.memory_words(dl.total());
    // Interior nodes store child *indices*; the evaluator wants child
    // *addresses*, so convert while writing the data segment.
    let node_addr = |idx: i64| (nodes_base + (idx as usize) * 3) as i64;
    for (k, n) in nodes.iter().enumerate() {
        let base = nodes_base + k * 3;
        let interior = matches!(n.tag, T_ADD | T_SUB | T_MUL | T_IF | T_MAX2);
        let a = if interior { node_addr(n.a) } else { n.a };
        let b = if interior { node_addr(n.b) } else { n.b };
        for (off, v) in [(0, n.tag), (1, a), (2, b)] {
            if v != 0 {
                pb.datum(base + off, v);
            }
        }
    }
    for (k, &r) in roots.iter().enumerate() {
        pb.datum(roots_base + k, (nodes_base + (r as usize) * 3) as i64);
    }
    pb.finish().expect("li validates")
}

/// Generates `root_count` random expression trees of bounded depth over a
/// shared node pool. Returns the pool and root indices. `If` then/else
/// subtrees are allocated adjacently (the evaluator relies on it).
fn generate_forest(seed: u64, root_count: usize, max_depth: u32) -> (Vec<Node>, Vec<i64>) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut nodes: Vec<Node> = Vec::new();
    let mut roots = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        let r = gen_tree(&mut rng, &mut nodes, max_depth);
        roots.push(r);
    }
    (nodes, roots)
}

fn gen_tree(rng: &mut Rng64, nodes: &mut Vec<Node>, depth: u32) -> i64 {
    // Reserve this node's slot first so parents precede children, then
    // fill it in.
    let slot = nodes.len();
    nodes.push(Node {
        tag: T_CONST,
        a: 0,
        b: 0,
    });
    if depth == 0 || rng.gen_bool(0.25) {
        if rng.gen_bool(0.5) {
            nodes[slot] = Node {
                tag: T_CONST,
                a: rng.gen_range(-9..10),
                b: 0,
            };
        } else {
            nodes[slot] = Node {
                tag: T_VAR,
                a: rng.gen_range(0..ENV_SIZE as i64),
                b: 0,
            };
        }
        return slot as i64;
    }
    match rng.gen_range(0..5) {
        0..=2 => {
            let tag = match rng.gen_range(0..3) {
                0 => T_ADD,
                1 => T_SUB,
                _ => T_MUL,
            };
            let a = gen_tree(rng, nodes, depth - 1);
            let b = gen_tree(rng, nodes, depth - 1);
            nodes[slot] = Node { tag, a, b };
        }
        3 => {
            let cond = gen_tree(rng, nodes, depth - 1);
            // then/else must be adjacent triples.
            let then_slot = nodes.len() as i64;
            let then_leaf = leaf(rng);
            nodes.push(then_leaf);
            let else_leaf = leaf(rng);
            nodes.push(else_leaf);
            nodes[slot] = Node {
                tag: T_IF,
                a: cond,
                b: then_slot,
            };
        }
        _ => {
            let a = gen_tree(rng, nodes, depth - 1);
            let b = gen_tree(rng, nodes, depth - 1);
            nodes[slot] = Node { tag: T_MAX2, a, b };
        }
    }
    slot as i64
}

fn leaf(rng: &mut Rng64) -> Node {
    if rng.gen_bool(0.5) {
        Node {
            tag: T_CONST,
            a: rng.gen_range(-9..10),
            b: 0,
        }
    } else {
        Node {
            tag: T_VAR,
            a: rng.gen_range(0..ENV_SIZE as i64),
            b: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn li_runs_and_recurses() {
        let p = build(Scale::Smoke);
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut CountingObserver::default()).unwrap();
        assert!(stats.halted);
        assert!(stats.calls > 1_000, "recursive eval must call a lot");
        assert!(stats.max_call_depth >= 3);
    }

    #[test]
    fn forest_if_nodes_have_adjacent_arms() {
        let (nodes, _) = generate_forest(1, 10, 6);
        for n in &nodes {
            if n.tag == T_IF {
                let then_i = n.b as usize;
                assert!(then_i + 1 < nodes.len());
                let t = nodes[then_i].tag;
                let e = nodes[then_i + 1].tag;
                assert!(t == T_CONST || t == T_VAR);
                assert!(e == T_CONST || e == T_VAR);
            }
        }
    }

    #[test]
    fn deterministic_build() {
        assert_eq!(build(Scale::Smoke), build(Scale::Smoke));
    }
}
