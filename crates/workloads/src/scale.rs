//! Workload sizing.

use std::fmt;

/// How big a workload's input (and therefore its flow) should be.
///
/// The paper's runs have flows of billions of path executions; laptop-scale
/// reproduction uses millions. All rates in the experiments are relative to
/// each run's own flow, so the shapes survive the rescaling.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests (≈10⁴ block events).
    Smoke,
    /// Medium inputs for quick experiments (≈10⁶ block events).
    Small,
    /// Full experiment inputs (≈10⁷–10⁸ block events).
    Full,
}

impl Scale {
    /// A multiplier workloads use to size their inputs: 1 for `Smoke`,
    /// `small` for `Small`, `full` for `Full`.
    pub fn pick(self, smoke: usize, small: usize, full: usize) -> usize {
        match self {
            Scale::Smoke => smoke,
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scale::Smoke => "smoke",
            Scale::Small => "small",
            Scale::Full => "full",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Scale::Full.to_string(), "full");
    }
}
