//! SPECint95-inspired benchmark programs for the hot-path prediction
//! reproduction.
//!
//! The paper evaluates on SPECint95 binaries plus `deltablue`. Those
//! binaries (and PA-RISC) are unavailable, so this crate provides nine
//! programs written in the `hotpath-ir` virtual ISA whose *algorithms* echo
//! their namesakes and whose dynamic path statistics reproduce the paper's
//! spectrum (Table 1): from `compress` — few paths, a hot set capturing
//! ~99% of the flow — to `gcc`/`go` — tens of thousands of paths with weak
//! dominance.
//!
//! Each workload embeds its (seeded, deterministic) input in the program's
//! data segment, so `Vm::new(&workload.program)` is all a consumer needs.
//!
//! ```
//! use hotpath_workloads::{build, Scale, WorkloadName};
//! use hotpath_vm::{CountingObserver, Vm};
//!
//! let w = build(WorkloadName::Compress, Scale::Smoke);
//! let mut vm = Vm::new(&w.program);
//! let stats = vm.run(&mut CountingObserver::default())?;
//! assert!(stats.halted);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod build_util;
mod compress;
mod deltablue;
mod gcc;
mod go;
mod ijpeg;
mod li;
mod m88ksim;
mod perl;
mod scale;
mod suite;
pub mod synthetic;
mod vortex;

pub use build_util::{end_loop, loop_up_to, DataLayout, Loop};
pub use scale::Scale;
pub use suite::{build, suite, Workload, WorkloadName, ALL_WORKLOADS};
