//! `ijpeg` — blocked image transform, quantization, and run-length
//! entropy coding.
//!
//! SPECint95 `ijpeg` compresses images: its hot flow is extremely regular
//! (row transforms, mostly-zero quantized coefficients) yet its path count
//! is the largest of the suite (Table 1: 62,125 paths, 93.3% hot flow) —
//! the long tail comes from rare coefficient-magnitude/run-length
//! combinations in the entropy coder. This workload mirrors that: a
//! butterfly row transform per 8×8 block (one dominant path shape), then a
//! coefficient loop whose zero/nonzero branch is heavily biased and whose
//! magnitude-class switch spreads the rare nonzero cases across many
//! paths.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{BinOp, CmpOp, GlobalReg, Program};

use crate::build_util::{end_loop, loop_up_to, DataLayout};
use crate::scale::Scale;

const BLOCK: usize = 64;

/// Builds the `ijpeg` workload at `scale`.
pub fn build(scale: Scale) -> Program {
    let blocks = scale.pick(120, 4_000, 60_000);
    let image = generate_image(blocks, 0x17E6);

    let mut dl = DataLayout::new();
    let img_base = dl.array(blocks * BLOCK);
    let coef_base = dl.array(BLOCK);
    let out_base = dl.array(blocks * 2 + BLOCK);

    let mut fb = FunctionBuilder::new("main");
    let nblocks = fb.imm(blocks as i64);
    let img_b = fb.imm(img_base as i64);
    let coef_b = fb.imm(coef_base as i64);
    let out_b = fb.imm(out_base as i64);
    let bits_out = fb.imm(0);
    let base = fb.reg();
    let addr = fb.reg();
    let a = fb.reg();
    let b = fb.reg();
    let c = fb.reg();
    let d = fb.reg();
    let tmp = fb.reg();
    let coef = fb.reg();
    let run = fb.reg();
    let class = fb.reg();

    let blk_loop = loop_up_to(&mut fb, nblocks);
    fb.mul_imm(base, blk_loop.i, BLOCK as i64);
    fb.add(base, base, img_b);

    // Row transform: 8 rows of a 4-point butterfly pair (branch-free body,
    // so every row iteration is the same dominant path).
    let rows = fb.imm(8);
    let row_loop = loop_up_to(&mut fb, rows);
    fb.mul_imm(addr, row_loop.i, 8);
    fb.add(addr, addr, base);
    fb.load(a, addr, 0);
    fb.load(b, addr, 1);
    fb.load(c, addr, 2);
    fb.load(d, addr, 3);
    // butterflies: (a+d, b+c, b-c, a-d) scaled
    fb.add(tmp, a, d);
    fb.store(tmp, addr, 0);
    fb.add(tmp, b, c);
    fb.store(tmp, addr, 1);
    fb.sub(tmp, b, c);
    fb.store(tmp, addr, 2);
    fb.sub(tmp, a, d);
    fb.store(tmp, addr, 3);
    fb.load(a, addr, 4);
    fb.load(b, addr, 5);
    fb.add(tmp, a, b);
    fb.shr_imm(tmp, tmp, 1);
    fb.store(tmp, addr, 4);
    fb.sub(tmp, a, b);
    fb.store(tmp, addr, 5);
    end_loop(&mut fb, &row_loop, 1);

    // Quantize into the coefficient buffer: coef = v >> (3 + k/16).
    let quant = fb.imm(BLOCK as i64);
    let q_loop = loop_up_to(&mut fb, quant);
    fb.add(addr, base, q_loop.i);
    fb.load(tmp, addr, 0);
    fb.bin_imm(BinOp::Div, a, q_loop.i, 16);
    fb.add_imm(a, a, 3);
    fb.bin(BinOp::Shr, tmp, tmp, a);
    fb.add(addr, coef_b, q_loop.i);
    fb.store(tmp, addr, 0);
    end_loop(&mut fb, &q_loop, 1);

    // Entropy coding: run-length of zeros + magnitude-class switch for
    // nonzero coefficients. The loop is unrolled 8x so each iteration's
    // path combines EIGHT coefficient outcomes — the combinatorial path
    // space (~9^8 shapes, mostly-zero dominant) that gives ijpeg the
    // largest path count of the suite on a mostly-hot flow.
    fb.const_(run, 0);
    let ncoef = fb.imm((BLOCK / 8) as i64);
    let e_loop = loop_up_to(&mut fb, ncoef);
    for u in 0..8i64 {
        fb.mul_imm(addr, e_loop.i, 8);
        fb.add(addr, addr, coef_b);
        fb.load(coef, addr, u);
        // Block creation order = layout order: every forward jump below
        // stays forward so the unrolled group remains one path.
        let zero_b = fb.new_block();
        let long_run = fb.new_block();
        let nonzero_b = fb.new_block();
        let mag_blocks: Vec<(hotpath_ir::LocalBlockId, hotpath_ir::LocalBlockId)> =
            (0..7).map(|_| (fb.new_block(), fb.new_block())).collect();
        let classes: Vec<_> = (0..8).map(|_| fb.new_block()).collect();
        let emit = fb.new_block();
        let joined = fb.new_block();
        let is_zero = fb.cmp_imm(CmpOp::Eq, coef, 0);
        fb.branch(is_zero, zero_b, nonzero_b);

        fb.switch_to(zero_b);
        fb.add_imm(run, run, 1);
        // Runs longer than 15 force an escape code (rare path).
        let over = fb.cmp_imm(CmpOp::Gt, run, 15);
        fb.branch(over, long_run, joined);
        fb.switch_to(long_run);
        fb.const_(run, 0);
        fb.add_imm(bits_out, bits_out, 11);
        fb.jump(joined);

        fb.switch_to(nonzero_b);
        // magnitude class = bit length of |coef| clamped to 0..7
        let mag = fb.reg();
        fb.const_(class, 0);
        fb.bin_imm(BinOp::Max, mag, coef, 0);
        fb.un(hotpath_ir::UnOp::Neg, tmp, coef);
        fb.bin(BinOp::Max, mag, mag, tmp);
        for (k, &(bump, next)) in mag_blocks.iter().enumerate() {
            let big = fb.cmp_imm(CmpOp::Ge, mag, 1 << k);
            fb.branch(big, bump, next);
            fb.switch_to(bump);
            fb.const_(class, (k + 1) as i64);
            fb.jump(next);
            fb.switch_to(next);
        }
        fb.switch(class, classes.clone(), emit);
        for (k, cb) in classes.iter().enumerate() {
            fb.switch_to(*cb);
            fb.add_imm(bits_out, bits_out, (4 + k) as i64);
            fb.jump(emit);
        }
        fb.switch_to(emit);
        fb.add(bits_out, bits_out, run);
        fb.const_(run, 0);
        fb.jump(joined);

        fb.switch_to(joined);
    }
    end_loop(&mut fb, &e_loop, 1);

    // Per-block summary out.
    fb.bin_imm(BinOp::And, tmp, blk_loop.i, (BLOCK - 1) as i64);
    fb.add(addr, out_b, tmp);
    fb.store(bits_out, addr, 0);
    end_loop(&mut fb, &blk_loop, 1);

    fb.set_global(GlobalReg::new(0), bits_out);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("ijpeg builds");
    pb.memory_words(dl.total());
    for (k, &v) in image.iter().enumerate() {
        if v != 0 {
            pb.datum(img_base + k, v);
        }
    }
    pb.finish().expect("ijpeg validates")
}

/// Smooth-ish image data: block DC levels wander, pixels add small noise,
/// occasional "edge" blocks have high contrast (the rare-path fuel).
fn generate_image(blocks: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut out = Vec::with_capacity(blocks * BLOCK);
    let mut dc: i64 = 128;
    for _ in 0..blocks {
        dc = (dc + rng.gen_range(-9i64..=9)).clamp(16, 240);
        let edgy = rng.gen_bool(0.06);
        for _ in 0..BLOCK {
            let noise = if edgy {
                rng.gen_range(-120i64..=120)
            } else {
                rng.gen_range(-6i64..=6)
            };
            out.push(dc + noise);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn ijpeg_runs_and_halts() {
        let p = build(Scale::Smoke);
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut CountingObserver::default()).unwrap();
        assert!(stats.halted);
        assert!(vm.global(GlobalReg::new(0)) > 0, "bits were emitted");
    }

    #[test]
    fn deterministic_build() {
        assert_eq!(build(Scale::Smoke), build(Scale::Smoke));
    }
}
