//! `m88ksim` — a fetch/decode/dispatch CPU simulator running a generated
//! guest program.
//!
//! SPECint95 `m88ksim` simulates a Motorola 88100; its profile is a
//! dispatch loop whose per-opcode handler paths dominate (Table 1: 1,426
//! paths, 92.5% hot flow). Here a 14-opcode guest ISA is interpreted by a
//! dispatch loop; each retired guest instruction is one interprocedural
//! forward path whose identity combines the indirect handler target, an
//! instruction-cache hit/miss bit, the handler's condition-code outcome
//! (negative/zero/positive writeback, as the 88100's status logic would
//! compute), and — for guest branches — a 2-bit branch-predictor
//! consultation. That is the bookkeeping that gives the real simulator its
//! mid-sized path population over a strongly dominant hot core.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{BinOp, CmpOp, GlobalReg, LocalBlockId, Program, Reg};

use crate::build_util::DataLayout;
use crate::scale::Scale;

// Guest opcodes.
const OP_HALT: i64 = 0;
const OP_ADDI: i64 = 1;
const OP_ADD: i64 = 2;
const OP_SUB: i64 = 3;
const OP_MUL: i64 = 4;
const OP_AND: i64 = 5;
const OP_XOR: i64 = 6;
const OP_SHR: i64 = 7;
const OP_LOAD: i64 = 8;
const OP_STORE: i64 = 9;
const OP_BNZ: i64 = 10;
const OP_JMP: i64 = 11;
const OP_CMPLT: i64 = 12;
const OP_MOV: i64 = 13;

const GUEST_REGS: usize = 16;
const GUEST_MEM: usize = 1 << 12;
const PRED_SIZE: usize = 64;
/// Handlers that write a guest register through the condition-code path.
const CC_SITES: usize = 10;

fn enc(op: i64, a: i64, b: i64, c: i64, imm: i64) -> i64 {
    debug_assert!((0..16).contains(&op));
    debug_assert!((0..16).contains(&a));
    debug_assert!((0..16).contains(&b));
    debug_assert!((0..16).contains(&c));
    op | (a << 4) | (b << 8) | (c << 12) | (imm << 16)
}

/// Per-writeback-site blocks for the condition-code update.
#[derive(Clone, Copy, Debug)]
struct CcSite {
    b_neg: LocalBlockId,
    b_nn: LocalBlockId,
    b_zero: LocalBlockId,
    b_pos: LocalBlockId,
}

/// Builds the `m88ksim` workload at `scale`.
pub fn build(scale: Scale) -> Program {
    let outer_trips = scale.pick(30, 900, 14_000) as i64;
    let guest = generate_guest_program(0x88_100, outer_trips);

    let mut dl = DataLayout::new();
    let code_base = dl.array(guest.len() + 1);
    let regs_base = dl.array(GUEST_REGS);
    let gmem_base = dl.array(GUEST_MEM);
    let pred_base = dl.array(PRED_SIZE);

    let mut fb = FunctionBuilder::new("main");
    let pc = fb.imm(0);
    let code_b = fb.imm(code_base as i64);
    let regs_b = fb.imm(regs_base as i64);
    let gmem_b = fb.imm(gmem_base as i64);
    let pred_b = fb.imm(pred_base as i64);
    let retired = fb.imm(0);
    let ictag = fb.imm(-1);
    let icmisses = fb.imm(0);
    let cc = fb.imm(0);
    let w = fb.reg();
    let op = fb.reg();
    let ra = fb.reg();
    let rb = fb.reg();
    let rc = fb.reg();
    let imm = fb.reg();
    let va = fb.reg();
    let vb = fb.reg();
    let vc = fb.reg();
    let addr = fb.reg();
    let tmp = fb.reg();

    // Block layout order is creation order: the dispatch header first, so
    // every end-of-handler jump to it is the backward latch; all joins are
    // created after their predecessors so in-path jumps stay forward.
    let header = fb.new_block();
    let ic_chk = fb.new_block();
    let ic_sets: Vec<LocalBlockId> = (0..4).map(|_| fb.new_block()).collect();
    let ic_miss = fb.new_block();
    let decode = fb.new_block();
    let h_addi = fb.new_block();
    let h_add = fb.new_block();
    let h_add_ovf = fb.new_block();
    let h_add_done = fb.new_block();
    let h_sub = fb.new_block();
    let h_mul = fb.new_block();
    let h_and = fb.new_block();
    let h_xor = fb.new_block();
    let h_shr = fb.new_block();
    let h_load = fb.new_block();
    let h_store = fb.new_block();
    let h_bnz = fb.new_block();
    let h_bnz_pred_taken = fb.new_block();
    let h_bnz_pred_not = fb.new_block();
    let h_bnz_resolve = fb.new_block();
    let h_bnz_taken = fb.new_block();
    let h_bnz_not = fb.new_block();
    let h_bnz_update = fb.new_block();
    let h_jmp = fb.new_block();
    let h_cmplt = fb.new_block();
    let h_mov = fb.new_block();
    let cc_sites: Vec<CcSite> = (0..CC_SITES)
        .map(|_| CcSite {
            b_neg: fb.new_block(),
            b_nn: fb.new_block(),
            b_zero: fb.new_block(),
            b_pos: fb.new_block(),
        })
        .collect();
    let next_pc = fb.new_block();
    let exit = fb.new_block();
    let mut sites = cc_sites.into_iter();

    fb.jump(header);

    // Fetch + halt test.
    fb.switch_to(header);
    fb.add(addr, code_b, pc);
    fb.load(w, addr, 0);
    fb.and_imm(op, w, 15);
    let halted = fb.cmp_imm(CmpOp::Eq, op, OP_HALT);
    fb.branch(halted, exit, ic_chk);

    // Instruction-cache lookup: 8-word lines, 4-way set dispatch (the set
    // index adds an indirect target correlated with the guest PC).
    fb.switch_to(ic_chk);
    fb.shr_imm(tmp, pc, 3);
    let set = fb.reg();
    fb.and_imm(set, tmp, 3);
    fb.switch(set, ic_sets.clone(), ic_miss);
    for sb in &ic_sets {
        fb.switch_to(*sb);
        let hit = fb.cmp(CmpOp::Eq, tmp, ictag);
        fb.branch(hit, decode, ic_miss);
    }
    fb.switch_to(ic_miss);
    fb.mov(ictag, tmp);
    fb.add_imm(icmisses, icmisses, 1);
    fb.jump(decode);

    // Decode fields and read register operands.
    fb.switch_to(decode);
    fb.shr_imm(ra, w, 4);
    fb.and_imm(ra, ra, 15);
    fb.shr_imm(rb, w, 8);
    fb.and_imm(rb, rb, 15);
    fb.shr_imm(rc, w, 12);
    fb.and_imm(rc, rc, 15);
    fb.shr_imm(imm, w, 16);
    fb.add(addr, regs_b, rb);
    fb.load(vb, addr, 0);
    fb.add(addr, regs_b, rc);
    fb.load(vc, addr, 0);
    fb.add(addr, regs_b, ra);
    fb.load(va, addr, 0);
    fb.switch(
        op,
        vec![
            exit, // OP_HALT (already handled, defensive)
            h_addi, h_add, h_sub, h_mul, h_and, h_xor, h_shr, h_load, h_store, h_bnz, h_jmp,
            h_cmplt, h_mov,
        ],
        exit,
    );

    // Writes `val` to guest register `ra` and branches three ways on its
    // sign to update the simulated condition codes, consuming one
    // pre-created [`CcSite`].
    let write_a_cc = |fb: &mut FunctionBuilder, val: Reg, site: CcSite| {
        fb.add(addr, regs_b, ra);
        fb.store(val, addr, 0);
        let neg = fb.cmp_imm(CmpOp::Lt, val, 0);
        fb.branch(neg, site.b_neg, site.b_nn);
        fb.switch_to(site.b_neg);
        fb.const_(cc, 2);
        fb.jump(next_pc);
        fb.switch_to(site.b_nn);
        let zero = fb.cmp_imm(CmpOp::Eq, val, 0);
        fb.branch(zero, site.b_zero, site.b_pos);
        fb.switch_to(site.b_zero);
        fb.const_(cc, 1);
        fb.jump(next_pc);
        fb.switch_to(site.b_pos);
        fb.const_(cc, 0);
        fb.jump(next_pc);
    };

    fb.switch_to(h_addi);
    fb.add(tmp, vb, imm);
    write_a_cc(&mut fb, tmp, sites.next().expect("site"));

    // ADD with an extra overflow-suspicion branch before the CC update.
    fb.switch_to(h_add);
    fb.add(tmp, vb, vc);
    let susp = fb.cmp_imm(CmpOp::Lt, tmp, 0);
    fb.branch(susp, h_add_ovf, h_add_done);
    fb.switch_to(h_add_ovf);
    fb.add_imm(icmisses, icmisses, 0); // status-flag bookkeeping
    fb.jump(h_add_done);
    fb.switch_to(h_add_done);
    write_a_cc(&mut fb, tmp, sites.next().expect("site"));

    fb.switch_to(h_sub);
    fb.sub(tmp, vb, vc);
    write_a_cc(&mut fb, tmp, sites.next().expect("site"));

    fb.switch_to(h_mul);
    fb.mul(tmp, vb, vc);
    write_a_cc(&mut fb, tmp, sites.next().expect("site"));

    fb.switch_to(h_and);
    fb.bin(BinOp::And, tmp, vb, vc);
    write_a_cc(&mut fb, tmp, sites.next().expect("site"));

    fb.switch_to(h_xor);
    fb.xor(tmp, vb, vc);
    write_a_cc(&mut fb, tmp, sites.next().expect("site"));

    fb.switch_to(h_shr);
    fb.bin(BinOp::Shr, tmp, vb, vc);
    write_a_cc(&mut fb, tmp, sites.next().expect("site"));

    // LOAD/STORE wrap guest addresses into guest memory (address masking,
    // as simulators do).
    fb.switch_to(h_load);
    fb.add(tmp, vb, imm);
    fb.and_imm(tmp, tmp, (GUEST_MEM - 1) as i64);
    fb.add(addr, gmem_b, tmp);
    fb.load(tmp, addr, 0);
    write_a_cc(&mut fb, tmp, sites.next().expect("site"));

    fb.switch_to(h_store);
    fb.add(tmp, vb, imm);
    fb.and_imm(tmp, tmp, (GUEST_MEM - 1) as i64);
    fb.add(addr, gmem_b, tmp);
    fb.store(va, addr, 0);
    fb.jump(next_pc);

    // BNZ: consult the 2-bit predictor (indexed by guest PC), branch on
    // the prediction, resolve, and update — four dynamic shapes.
    fb.switch_to(h_bnz);
    fb.and_imm(tmp, pc, (PRED_SIZE - 1) as i64);
    fb.add(addr, pred_b, tmp);
    let pred = fb.reg();
    fb.load(pred, addr, 0);
    let pred_hot = fb.cmp_imm(CmpOp::Ge, pred, 2);
    fb.branch(pred_hot, h_bnz_pred_taken, h_bnz_pred_not);
    fb.switch_to(h_bnz_pred_taken);
    fb.jump(h_bnz_resolve);
    fb.switch_to(h_bnz_pred_not);
    fb.jump(h_bnz_resolve);
    fb.switch_to(h_bnz_resolve);
    let cond = fb.cmp_imm(CmpOp::Ne, va, 0);
    fb.branch(cond, h_bnz_taken, h_bnz_not);
    fb.switch_to(h_bnz_taken);
    fb.add(pc, pc, imm);
    fb.bin_imm(BinOp::Min, pred, pred, 2);
    fb.add_imm(pred, pred, 1);
    fb.jump(h_bnz_update);
    fb.switch_to(h_bnz_not);
    fb.add_imm(pc, pc, 1);
    fb.bin_imm(BinOp::Max, pred, pred, 1);
    fb.add_imm(pred, pred, -1);
    fb.jump(h_bnz_update);
    fb.switch_to(h_bnz_update);
    fb.store(pred, addr, 0);
    fb.add_imm(retired, retired, 1);
    fb.jump(header); // backward latch (PC already advanced)

    fb.switch_to(h_jmp);
    fb.add(pc, pc, imm);
    fb.add_imm(retired, retired, 1);
    fb.jump(header); // backward latch

    fb.switch_to(h_cmplt);
    let lt = fb.cmp(CmpOp::Lt, vb, vc);
    write_a_cc(&mut fb, lt, sites.next().expect("site"));

    fb.switch_to(h_mov);
    write_a_cc(&mut fb, vb, sites.next().expect("site"));

    fb.switch_to(next_pc);
    fb.add_imm(pc, pc, 1);
    fb.add_imm(retired, retired, 1);
    fb.jump(header); // backward latch

    fb.switch_to(exit);
    fb.set_global(GlobalReg::new(0), retired);
    fb.set_global(GlobalReg::new(1), icmisses);
    fb.halt();

    assert!(sites.next().is_none(), "all CC sites consumed");

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("m88ksim builds");
    pb.memory_words(dl.total());
    for (k, &word) in guest.iter().enumerate() {
        if word != 0 {
            pb.datum(code_base + k, word);
        }
    }
    pb.finish().expect("m88ksim validates")
}

/// Generates a terminating guest program: an outer counted loop whose body
/// mixes ALU ops, memory traffic, an unconditional hop, a data-dependent
/// skip, and an inner counted loop.
fn generate_guest_program(seed: u64, outer_trips: i64) -> Vec<i64> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut code: Vec<i64> = Vec::new();
    // Three sequential loop nests ("phases") with large straight-line
    // bodies: each distinct guest instruction slot yields its own
    // dispatch-path shape (handler target + icache set/line bits + CC
    // outcome), which is where the real simulator's path population lives.
    for phase in 0..3 {
        let trips = (outer_trips / 3).max(1) + phase;
        code.push(enc(OP_ADDI, 15, 0, 0, trips));
        let outer_top = code.len() as i64;

        let body_len = rng.gen_range(30..55);
        for _ in 0..body_len {
            let a = rng.gen_range(1..13);
            let b = rng.gen_range(1..13);
            let c = rng.gen_range(1..13);
            match rng.gen_range(0..11) {
                0 => code.push(enc(OP_ADDI, a, b, 0, rng.gen_range(-30..30))),
                1 => code.push(enc(OP_ADD, a, b, c, 0)),
                2 => code.push(enc(OP_SUB, a, b, c, 0)),
                3 => code.push(enc(OP_MUL, a, b, c, 0)),
                4 => code.push(enc(OP_AND, a, b, c, 0)),
                5 => code.push(enc(OP_XOR, a, b, c, 0)),
                6 => code.push(enc(OP_CMPLT, a, b, c, 0)),
                7 => code.push(enc(OP_SHR, a, b, c, 0)),
                8 => code.push(enc(OP_LOAD, a, b, 0, rng.gen_range(0..64))),
                9 => code.push(enc(OP_STORE, a, b, 0, rng.gen_range(0..64))),
                _ => code.push(enc(OP_MOV, a, b, 0, 0)),
            }
        }

        // Unconditional hop over a dead instruction.
        code.push(enc(OP_JMP, 0, 0, 0, 2));
        code.push(enc(OP_XOR, 9, 9, 9, 0)); // skipped

        // Data-dependent skip: r12 = r1; BNZ r12 -> skip two instructions.
        code.push(enc(OP_ADDI, 12, 1, 0, 0));
        code.push(enc(OP_AND, 12, 12, 12, 0));
        code.push(enc(OP_BNZ, 12, 0, 0, 3));
        code.push(enc(OP_XOR, 2, 2, 3, 0));
        code.push(enc(OP_ADD, 3, 3, 4, 0));

        // Inner loop: load-modify-store over guest memory.
        code.push(enc(OP_ADDI, 14, 0, 0, 4 + phase));
        let inner_top = code.len() as i64;
        code.push(enc(OP_ADDI, 13, 13, 0, 7)); // advance index
        code.push(enc(OP_LOAD, 5, 13, 0, 0));
        code.push(enc(OP_ADD, 5, 5, 1, 0));
        code.push(enc(OP_STORE, 5, 13, 0, 0));
        code.push(enc(OP_ADDI, 14, 14, 0, -1));
        let back = inner_top - (code.len() as i64);
        code.push(enc(OP_BNZ, 14, 0, 0, back));

        // Outer latch.
        code.push(enc(OP_ADDI, 15, 15, 0, -1));
        let back = outer_top - (code.len() as i64);
        code.push(enc(OP_BNZ, 15, 0, 0, back));
    }
    code.push(enc(OP_HALT, 0, 0, 0, 0));
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn simulator_retires_expected_instruction_count() {
        let p = build(Scale::Smoke);
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut CountingObserver::default()).unwrap();
        assert!(stats.halted);
        let retired = vm.global(GlobalReg::new(0));
        assert!(retired > 1_000, "retired {retired}");
        assert!(stats.indirect_branches as i64 >= retired);
        // The icache model actually misses sometimes (line crossings).
        assert!(vm.global(GlobalReg::new(1)) > 0);
    }

    #[test]
    fn encoding_round_trips() {
        let w = enc(OP_BNZ, 14, 3, 7, -12);
        assert_eq!(w & 15, OP_BNZ);
        assert_eq!((w >> 4) & 15, 14);
        assert_eq!((w >> 8) & 15, 3);
        assert_eq!((w >> 12) & 15, 7);
        assert_eq!(w >> 16, -12);
    }

    #[test]
    fn deterministic_build() {
        assert_eq!(build(Scale::Smoke), build(Scale::Smoke));
    }
}
