//! `vortex` — an object store: hash index with collision chains under a
//! transaction mix.
//!
//! SPECint95 `vortex` is an object-oriented database (Table 1: 5,825
//! paths, 85.8% hot flow). This workload runs lookup/insert/delete
//! transactions against a chained hash index with a free list; Zipf-skewed
//! keys make short-chain lookups the hot core while long chains, misses,
//! and structural updates spread the rest of the flow across thousands of
//! paths.

use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath_ir::rng::Rng64;
use hotpath_ir::{CmpOp, GlobalReg, Program};

use crate::build_util::{end_loop, loop_up_to, DataLayout};
use crate::scale::Scale;

const BUCKETS: usize = 512;
const POOL: usize = 8192; // nodes: (key, val, next+1) triples

/// Builds the `vortex` workload at `scale`.
pub fn build(scale: Scale) -> Program {
    let txns = scale.pick(2_000, 70_000, 1_000_000);
    let stream = generate_transactions(txns, 0x0B6E);

    let mut dl = DataLayout::new();
    let txn_base = dl.array(txns);
    let bucket_base = dl.array(BUCKETS);
    let pool_base = dl.array(POOL * 3);
    let free_head = dl.word(); // next free node index + 1

    let mut fb = FunctionBuilder::new("main");
    let nn = fb.imm(txns as i64);
    let txn_b = fb.imm(txn_base as i64);
    let bucket_b = fb.imm(bucket_base as i64);
    let pool_b = fb.imm(pool_base as i64);
    let free_w = fb.imm(free_head as i64);
    let hits = fb.imm(0);
    let misses = fb.imm(0);
    let w = fb.reg();
    let op = fb.reg();
    let key = fb.reg();
    let h = fb.reg();
    let addr = fb.reg();
    let node = fb.reg(); // node index + 1, 0 = nil
    let prev = fb.reg();
    let tmp = fb.reg();
    let nkey = fb.reg();

    let main_loop = loop_up_to(&mut fb, nn);
    fb.add(addr, txn_b, main_loop.i);
    fb.load(w, addr, 0);
    fb.and_imm(op, w, 3);
    fb.shr_imm(key, w, 2);

    // Key validation, as the real store's schema checks: three unrolled
    // bit tests contribute independent path bits per transaction.
    let vchecks: Vec<(hotpath_ir::LocalBlockId, hotpath_ir::LocalBlockId)> =
        (0..3).map(|_| (fb.new_block(), fb.new_block())).collect();
    for (k, &(set_b, join_b)) in vchecks.iter().enumerate() {
        fb.and_imm(tmp, key, 1 << (4 + 2 * k));
        fb.branch(tmp, set_b, join_b);
        fb.switch_to(set_b);
        fb.add_imm(hits, hits, 0); // schema bookkeeping
        fb.jump(join_b);
        fb.switch_to(join_b);
    }

    // h = key * 2654435761 mod 2^31, masked to buckets.
    fb.mul_imm(h, key, 2_654_435_761);
    fb.shr_imm(h, h, 16);
    fb.and_imm(h, h, (BUCKETS - 1) as i64);

    // Chain walk shared by all operations: find key, tracking predecessor.
    // The walk is unrolled two nodes per iteration, and each probe tests
    // the key's low nibble before the full key (a hash-prefilter, as the
    // real index code does) — so one walk iteration carries several
    // data-dependent bits, the source of vortex's path spread.
    let walk_hdr = fb.new_block();
    let probes: Vec<[hotpath_ir::LocalBlockId; 4]> = (0..2)
        .map(|_| {
            [
                fb.new_block(),
                fb.new_block(),
                fb.new_block(),
                fb.new_block(),
            ]
        })
        .collect();
    let walk_latch = fb.new_block();
    let walk_done = fb.new_block();
    fb.add(addr, bucket_b, h);
    fb.load(node, addr, 0);
    fb.const_(prev, 0);
    let klow = fb.reg();
    fb.and_imm(klow, key, 15);
    fb.jump(walk_hdr);
    fb.switch_to(walk_hdr);
    for &probe in &probes {
        let [test, full, advance, next_probe] = probe;
        let nil = fb.cmp_imm(CmpOp::Eq, node, 0);
        fb.branch(nil, walk_done, test);
        fb.switch_to(test);
        fb.add_imm(tmp, node, -1);
        fb.mul_imm(tmp, tmp, 3);
        fb.add(tmp, tmp, pool_b);
        fb.load(nkey, tmp, 0);
        let nk_low = fb.reg();
        fb.and_imm(nk_low, nkey, 15);
        let low_eq = fb.cmp(CmpOp::Eq, nk_low, klow);
        fb.branch(low_eq, full, advance);
        fb.switch_to(full);
        let found = fb.cmp(CmpOp::Eq, nkey, key);
        fb.branch(found, walk_done, advance);
        fb.switch_to(advance);
        fb.mov(prev, node);
        fb.load(node, tmp, 2); // next
        fb.jump(next_probe);
        fb.switch_to(next_probe);
    }
    fb.jump(walk_latch);
    fb.switch_to(walk_latch);
    fb.jump(walk_hdr); // backward: chain-walk latch
    fb.switch_to(walk_done);

    // Dispatch on operation.
    let do_lookup = fb.new_block();
    let lk_hit = fb.new_block();
    let type_blocks: Vec<hotpath_ir::LocalBlockId> = (0..8).map(|_| fb.new_block()).collect();
    let lk_miss = fb.new_block();
    let do_insert = fb.new_block();
    let ins_update = fb.new_block();
    let ins_fresh = fb.new_block();
    let ins_nopool = fb.new_block();
    let do_delete = fb.new_block();
    let del_hit = fb.new_block();
    let del_head = fb.new_block();
    let del_mid = fb.new_block();
    let del_free = fb.new_block();
    let del_miss = fb.new_block();
    let txn_done = fb.new_block();
    fb.switch(
        op,
        vec![do_lookup, do_lookup, do_insert, do_delete],
        txn_done,
    );

    // Lookup.
    fb.switch_to(do_lookup);
    let have = fb.cmp_imm(CmpOp::Ne, node, 0);
    fb.branch(have, lk_hit, lk_miss);
    fb.switch_to(lk_hit);
    fb.add_imm(tmp, node, -1);
    fb.mul_imm(tmp, tmp, 3);
    fb.add(tmp, tmp, pool_b);
    fb.load(w, tmp, 1);
    fb.add_imm(w, w, 1);
    fb.store(w, tmp, 1); // touch the object
    fb.add_imm(hits, hits, 1);
    // Object-type dispatch: the store's classes handle a hit differently.
    let otype = fb.reg();
    fb.and_imm(otype, key, 7);
    fb.switch(otype, type_blocks.clone(), txn_done);
    for (k, tb) in type_blocks.iter().enumerate() {
        fb.switch_to(*tb);
        fb.add_imm(hits, hits, (k % 2) as i64);
        fb.jump(txn_done);
    }
    fb.switch_to(lk_miss);
    fb.add_imm(misses, misses, 1);
    fb.jump(txn_done);

    // Insert: update in place on hit, else take a node from the free list
    // and push it at the bucket head.
    fb.switch_to(do_insert);
    let present = fb.cmp_imm(CmpOp::Ne, node, 0);
    fb.branch(present, ins_update, ins_fresh);
    fb.switch_to(ins_update);
    fb.add_imm(tmp, node, -1);
    fb.mul_imm(tmp, tmp, 3);
    fb.add(tmp, tmp, pool_b);
    fb.store(key, tmp, 1);
    fb.jump(txn_done);
    fb.switch_to(ins_fresh);
    fb.load(node, free_w, 0);
    let pool_ok = fb.cmp_imm(CmpOp::Ne, node, 0);
    fb.branch(pool_ok, ins_nopool, txn_done); // inverted label: ok -> work
    fb.switch_to(ins_nopool);
    // advance free list: free = node.next
    fb.add_imm(tmp, node, -1);
    fb.mul_imm(tmp, tmp, 3);
    fb.add(tmp, tmp, pool_b);
    fb.load(w, tmp, 2);
    fb.store(w, free_w, 0);
    // fill node and link at head
    fb.store(key, tmp, 0);
    fb.store(main_loop.i, tmp, 1);
    fb.add(addr, bucket_b, h);
    fb.load(w, addr, 0);
    fb.store(w, tmp, 2);
    fb.store(node, addr, 0);
    fb.jump(txn_done);

    // Delete: unlink (head or middle) and return the node to the free
    // list.
    fb.switch_to(do_delete);
    let gone = fb.cmp_imm(CmpOp::Eq, node, 0);
    fb.branch(gone, del_miss, del_hit);
    fb.switch_to(del_hit);
    fb.add_imm(tmp, node, -1);
    fb.mul_imm(tmp, tmp, 3);
    fb.add(tmp, tmp, pool_b);
    fb.load(w, tmp, 2); // successor
    let at_head = fb.cmp_imm(CmpOp::Eq, prev, 0);
    fb.branch(at_head, del_head, del_mid);
    fb.switch_to(del_head);
    fb.add(addr, bucket_b, h);
    fb.store(w, addr, 0);
    fb.jump(del_free);
    fb.switch_to(del_mid);
    fb.add_imm(addr, prev, -1);
    fb.mul_imm(addr, addr, 3);
    fb.add(addr, addr, pool_b);
    fb.store(w, addr, 2);
    fb.jump(del_free);
    fb.switch_to(del_free);
    fb.load(w, free_w, 0);
    fb.store(w, tmp, 2);
    fb.store(node, free_w, 0);
    fb.jump(txn_done);
    fb.switch_to(del_miss);
    fb.add_imm(misses, misses, 1);
    fb.jump(txn_done);

    fb.switch_to(txn_done);
    end_loop(&mut fb, &main_loop, 1);
    fb.set_global(GlobalReg::new(0), hits);
    fb.set_global(GlobalReg::new(1), misses);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("vortex builds");
    pb.memory_words(dl.total());
    for (k, &t) in stream.iter().enumerate() {
        if t != 0 {
            pb.datum(txn_base + k, t);
        }
    }
    // Free list: node k -> k+1, last -> nil; head = 1.
    for k in 0..POOL {
        let next = if k + 1 < POOL { (k + 2) as i64 } else { 0 };
        if next != 0 {
            pb.datum(pool_base + k * 3 + 2, next);
        }
    }
    pb.datum(free_head, 1);
    pb.finish().expect("vortex validates")
}

/// Transaction stream: 55% lookups (ops 0/1), 30% inserts, 15% deletes;
/// keys are Zipf-skewed over a 4k space.
fn generate_transactions(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r = rng.gen_range(0..100);
            let op = if r < 55 {
                rng.gen_range(0..2)
            } else if r < 85 {
                2
            } else {
                3
            };
            // Zipf-ish: 70% of traffic on 64 hot keys.
            let key = if rng.gen_bool(0.7) {
                rng.gen_range(0..64i64)
            } else {
                rng.gen_range(0..4096i64)
            };
            op | (key << 2)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_vm::{CountingObserver, Vm};

    #[test]
    fn vortex_runs_with_hits_and_misses() {
        let p = build(Scale::Smoke);
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut CountingObserver::default()).unwrap();
        assert!(stats.halted);
        let hits = vm.global(GlobalReg::new(0));
        let misses = vm.global(GlobalReg::new(1));
        assert!(hits > 0, "hot keys get re-looked-up");
        assert!(misses > 0, "cold keys miss");
    }

    #[test]
    fn deterministic_build() {
        assert_eq!(build(Scale::Smoke), build(Scale::Smoke));
    }
}
