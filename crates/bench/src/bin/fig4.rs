//! Regenerates **Figure 4**: the amount of counter space used by NET
//! prediction normalized to path-profile based prediction — i.e. unique
//! path heads over dynamic paths, per benchmark plus the average.
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin fig4 -- --scale full
//! ```

use hotpath_bench::{record_suite_parallel, write_csv, Options};

fn main() {
    let opts = Options::from_env();
    let runs = record_suite_parallel(opts.scale);

    println!("\nFigure 4. NET counter space normalized to path-profile counter space");
    println!(
        "{:<10} {:>9} {:>9} {:>10}",
        "Benchmark", "heads", "paths", "ratio"
    );
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for run in &runs {
        let heads = run.table.unique_heads();
        let paths = run.table.len().max(1);
        let ratio = heads as f64 / paths as f64;
        ratios.push(ratio);
        println!(
            "{:<10} {:>9} {:>9} {:>9.3}",
            run.name.to_string(),
            heads,
            paths,
            ratio
        );
        rows.push(format!("{},{heads},{paths},{ratio:.4}", run.name));
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("{:<10} {:>9} {:>9} {:>9.3}", "Average", "", "", avg);
    rows.push(format!("average,,,{avg:.4}"));
    write_csv(
        &opts.out_dir,
        "fig4_counter_space.csv",
        "benchmark,unique_heads,paths,net_over_pathprofile",
        &rows,
    );
    println!(
        "\nNET uses on average {:.0}% of the counter space of path-profile based prediction.",
        avg * 100.0
    );
}
