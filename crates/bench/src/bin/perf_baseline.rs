//! `perf_baseline` — end-to-end throughput of the profiling pipeline.
//!
//! Measures blocks interpreted per second over the workload suite for five
//! configurations, without any external benchmark framework:
//!
//! * `native` — the bare VM with a [`CountingObserver`] (the floor all
//!   profiling overhead is measured against),
//! * `net` — VM + path extraction feeding a [`NetPredictor`] at Dynamo's
//!   shipped delay τ=50 (the paper's "less is more" configuration),
//! * `ball_larus` — VM + runtime Ball–Larus path profiling (the "more"
//!   being compared against),
//! * `dynamo` — the full fragment-cache engine under the NET scheme, with
//!   cache execution *simulated* (every block still pays per-block
//!   dispatch and an observer call),
//! * `dynamo-linked` — the same engine driving the VM's compiled-trace
//!   backend (`Vm::run_linked`): predicted paths execute as contiguous
//!   guarded superblocks with patched trace-to-trace links, so hot code
//!   skips per-block dispatch entirely,
//! * `dynamo-linked-opt` — `dynamo-linked` with the trace optimizer at
//!   `OptLevel::Full`: redundant guards elided, loop-invariant guards
//!   hoisted, constants folded and sunk into exit stubs, and the trace
//!   body direct-threaded. Bit-identical results, fewer guard checks.
//!
//! The two linked modes also record `guard_execs` — the deterministic
//! count of guard checks executed in trace-land over the suite — so the
//! regression gate can catch an optimizer that silently stops optimizing.
//!
//! Each (workload, mode) pair runs `--reps` times and keeps the fastest
//! repetition; per-mode totals are summed over the suite. Results append to
//! a JSON file (default `BENCH_perf.json`) as one labelled run, so a
//! before/after pair of invocations (`--label hashmap-baseline`, then
//! `--label dense-tables`) accumulates into a single comparable document,
//! and any earlier labelled runs found in the file are printed as speedup
//! ratios.
//!
//! Usage: `perf_baseline [--scale smoke|small|full] [--label NAME]
//! [--reps N] [--json PATH] [--telemetry PATH]`
//!
//! `--telemetry PATH` installs a summary recorder for the whole run and
//! writes a `telemetry.json` snapshot to PATH. The recorder observes the
//! measured loops themselves, so the reported throughput then includes
//! recording overhead — gate CI on runs made *without* this flag and use
//! it only when the event counts are the artifact of interest.

use std::fmt::Write as _;
use std::fs;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use hotpath_core::{HotPathPredictor, NetPredictor};
use hotpath_dynamo::{run_dynamo, run_dynamo_linked, DynamoConfig, Scheme};
use hotpath_profiles::{BallLarusProfiler, PathExecution, PathExtractor, PathSink};
use hotpath_telemetry as telemetry;
use hotpath_vm::{CountingObserver, OptLevel, Vm};
use hotpath_workloads::{build, Scale, ALL_WORKLOADS};

/// Dynamo's shipped NET prediction delay (paper §5).
const NET_DELAY: u64 = 50;

/// The measured modes, in report order.
const MODES: [&str; 6] = [
    "native",
    "net",
    "ball_larus",
    "dynamo",
    "dynamo-linked",
    "dynamo-linked-opt",
];
const NUM_MODES: usize = MODES.len();

/// Feeds completed paths straight into a NET predictor, discarding the
/// predictions — this measures profiling cost, not prediction quality.
struct NetSink(NetPredictor);

impl PathSink for NetSink {
    fn on_path(&mut self, exec: &PathExecution) {
        black_box(self.0.observe(exec));
    }
}

struct Args {
    scale: Scale,
    label: String,
    reps: u32,
    json: PathBuf,
    telemetry: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Small,
        label: "current".to_string(),
        reps: 3,
        json: PathBuf::from("BENCH_perf.json"),
        telemetry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--scale" => {
                args.scale = match value("--scale").as_str() {
                    "smoke" => Scale::Smoke,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => panic!("unknown scale `{other}` (smoke|small|full)"),
                }
            }
            "--label" => args.label = value("--label"),
            "--reps" => {
                args.reps = value("--reps").parse().expect("--reps takes a number");
                assert!(args.reps > 0, "--reps must be positive");
            }
            "--json" => args.json = PathBuf::from(value("--json")),
            "--telemetry" => args.telemetry = Some(PathBuf::from(value("--telemetry"))),
            other => panic!(
                "unknown argument `{other}` (usage: [--scale smoke|small|full] \
                 [--label NAME] [--reps N] [--json PATH] [--telemetry PATH])"
            ),
        }
    }
    args
}

/// Fastest-of-`reps` wall time for one closure.
fn best_secs(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "[perf] scale={} reps={} label={}",
        scale_name(args.scale),
        args.reps,
        args.label
    );

    // With --telemetry, every measured loop below streams its pipeline
    // events into this summary (and pays for doing so; see module docs).
    let recording = args.telemetry.as_ref().map(|_| {
        let (recorder, handle) = telemetry::SummaryRecorder::new();
        (telemetry::install(Box::new(recorder)), handle)
    });

    // blocks, per-mode best times, and per-mode guard-check counts
    // (deterministic, so measured once per workload), summed over the
    // suite.
    let mut total_blocks: u64 = 0;
    let mut mode_secs = [0.0f64; NUM_MODES];
    let mut mode_guards = [0u64; NUM_MODES];

    for name in ALL_WORKLOADS {
        let w = build(name, args.scale);
        let p = &w.program;
        let workload_label = name.to_string();
        telemetry::emit!(telemetry::Event::RunStart {
            label: &workload_label,
        });

        // Native VM run also establishes the dynamic block count every
        // other mode interprets (the workloads are deterministic).
        let stats = Vm::new(p)
            .run(&mut CountingObserver::default())
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        let blocks = stats.blocks_executed;
        total_blocks += blocks;

        let native = best_secs(args.reps, || {
            let mut obs = CountingObserver::default();
            black_box(Vm::new(p).run(&mut obs).expect("native run"));
            black_box(obs);
        });
        let net = best_secs(args.reps, || {
            let mut ex = PathExtractor::new(NetSink(NetPredictor::new(NET_DELAY)));
            black_box(Vm::new(p).run(&mut ex).expect("net run"));
            black_box(ex.into_parts());
        });
        let bl = best_secs(args.reps, || {
            let mut profiler = BallLarusProfiler::new(p).expect("reducible CFGs");
            black_box(Vm::new(p).run(&mut profiler).expect("ball-larus run"));
            black_box(profiler.distinct_paths());
        });
        let dynamo = best_secs(args.reps, || {
            let out =
                run_dynamo(p, &DynamoConfig::new(Scheme::Net, NET_DELAY)).expect("dynamo run");
            black_box(out);
        });
        let linked = best_secs(args.reps, || {
            let out = run_dynamo_linked(p, &DynamoConfig::new(Scheme::Net, NET_DELAY))
                .expect("dynamo-linked run");
            black_box(out);
        });
        let opt_config = DynamoConfig::new(Scheme::Net, NET_DELAY).with_opt_level(OptLevel::Full);
        let linked_opt = best_secs(args.reps, || {
            let out = run_dynamo_linked(p, &opt_config).expect("dynamo-linked-opt run");
            black_box(out);
        });
        // Guard-check counts are deterministic per (workload, opt level):
        // one unmeasured run each suffices.
        mode_guards[4] += run_dynamo_linked(p, &DynamoConfig::new(Scheme::Net, NET_DELAY))
            .expect("dynamo-linked run")
            .outcome
            .guard_execs;
        mode_guards[5] += run_dynamo_linked(p, &opt_config)
            .expect("dynamo-linked-opt run")
            .outcome
            .guard_execs;

        for ((slot, secs), mode) in mode_secs
            .iter_mut()
            .zip([native, net, bl, dynamo, linked, linked_opt])
            .zip(MODES)
        {
            *slot += secs;
            telemetry::emit!(telemetry::Event::Timing {
                label: &format!("{workload_label}/{mode}"),
                secs,
            });
        }
        telemetry::emit!(telemetry::Event::RunEnd {
            label: &workload_label,
        });
        eprintln!(
            "[perf] {:<10} blocks={:>11} native={:.3}s net={:.3}s bl={:.3}s dynamo={:.3}s \
             linked={:.3}s linked-opt={:.3}s",
            name.to_string(),
            blocks,
            native,
            net,
            bl,
            dynamo,
            linked,
            linked_opt
        );
    }

    println!(
        "\n=== perf_baseline: {} (scale {}, best of {} reps) ===",
        args.label,
        scale_name(args.scale),
        args.reps
    );
    println!(
        "{:<18} {:>10} {:>16} {:>14}",
        "mode", "secs", "blocks/sec", "guard_execs"
    );
    let mut run_json = String::new();
    let _ = writeln!(run_json, "    {{");
    let _ = writeln!(run_json, "      \"label\": \"{}\",", args.label);
    let _ = writeln!(run_json, "      \"scale\": \"{}\",", scale_name(args.scale));
    let _ = writeln!(run_json, "      \"reps\": {},", args.reps);
    let _ = writeln!(run_json, "      \"total_blocks\": {},", total_blocks);
    let _ = writeln!(run_json, "      \"modes\": {{");
    for (i, ((mode, secs), guards)) in MODES.iter().zip(mode_secs).zip(mode_guards).enumerate() {
        let rate = total_blocks as f64 / secs;
        println!("{mode:<18} {secs:>10.3} {rate:>16.0} {guards:>14}");
        let comma = if i + 1 < MODES.len() { "," } else { "" };
        let _ = writeln!(
            run_json,
            "        \"{mode}\": {{\"secs\": {secs:.6}, \"blocks_per_sec\": {rate:.0}, \
             \"guard_execs\": {guards}}}{comma}"
        );
    }
    let _ = writeln!(run_json, "      }}");
    let _ = write!(run_json, "    }}");

    // Append this run to the JSON document (creating it if needed), and
    // report speedups against any earlier labelled runs it already holds.
    let existing = fs::read_to_string(&args.json).ok();
    if let Some(prev) = &existing {
        report_speedups(prev, &mode_secs, total_blocks);
    }
    let doc = match existing {
        Some(prev) => {
            let trimmed = prev.trim_end();
            let body = trimmed
                .strip_suffix("\n  ]\n}")
                .or_else(|| trimmed.strip_suffix("]\n}"))
                .unwrap_or_else(|| {
                    panic!(
                        "{} exists but is not a perf_baseline document",
                        args.json.display()
                    )
                })
                .trim_end();
            format!("{body},\n{run_json}\n  ]\n}}\n")
        }
        None => format!("{{\n  \"runs\": [\n{run_json}\n  ]\n}}\n"),
    };
    fs::write(&args.json, doc).expect("write json");
    eprintln!(
        "[perf] appended run `{}` to {}",
        args.label,
        args.json.display()
    );

    if let (Some(path), Some((guard, handle))) = (&args.telemetry, recording) {
        drop(guard);
        fs::write(path, handle.snapshot().to_json(&args.label)).expect("write telemetry json");
        eprintln!("[perf] wrote telemetry summary to {}", path.display());
    }
}

/// Prints blocks/sec ratios of this run against each labelled run already
/// in the document, over whichever modes the earlier run recorded (older
/// documents predate `dynamo-linked`). The document is our own controlled
/// format, so a simple line scan suffices instead of a JSON parser.
fn report_speedups(prev: &str, mode_secs: &[f64; NUM_MODES], total_blocks: u64) {
    let mut label: Option<String> = None;
    let mut prev_rates: Vec<(String, f64)> = Vec::new();
    let flush = |label: &Option<String>, rates: &Vec<(String, f64)>| {
        let Some(l) = label else { return };
        let mut printed_header = false;
        for (mode, &secs) in MODES.iter().zip(mode_secs) {
            let Some(&(_, prev_rate)) = rates.iter().find(|(m, _)| m == mode) else {
                continue;
            };
            if prev_rate <= 0.0 {
                continue;
            }
            if !printed_header {
                println!("\n--- speedup vs `{l}` (blocks/sec ratio) ---");
                printed_header = true;
            }
            let now = total_blocks as f64 / secs;
            println!("{mode:<12} {:>7.2}x", now / prev_rate);
        }
    };
    for line in prev.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"label\": \"") {
            flush(&label, &prev_rates);
            label = rest.strip_suffix("\",").map(str::to_string);
            prev_rates.clear();
        } else if let Some(idx) = t.find("\"blocks_per_sec\": ") {
            // Mode lines look like `"net": {"secs": ..., "blocks_per_sec": N}`.
            let mode = t.trim_start_matches('"').split('"').next().unwrap_or("");
            let num = t[idx + "\"blocks_per_sec\": ".len()..]
                .trim_end_matches(['}', ','])
                .trim();
            if let Ok(r) = num.parse::<f64>() {
                prev_rates.push((mode.to_string(), r));
            }
        }
    }
    flush(&label, &prev_rates);
}
