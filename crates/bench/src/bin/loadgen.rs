//! `loadgen` — deterministic load generation for the serving layer.
//!
//! Drives N concurrent sessions (workloads drawn deterministically from
//! the nine-benchmark suite by a seeded shuffle) against a
//! `hotpath-serve` pool and measures aggregate blocks/sec for three
//! modes:
//!
//! * `native` — the same workload instances run sequentially on the bare
//!   VM (the floor, and the normalizer `bench_compare --relative` needs),
//! * `serve-single` — the same instances run sequentially through a
//!   1-shard session pool (per-session serving overhead),
//! * `serve-aggregate` — all N sessions concurrently across `--shards`
//!   shards, one driver thread per session (the multiplexed throughput
//!   the serving layer exists for).
//!
//! All three modes execute the identical block total, so their
//! blocks/sec are directly comparable and append to the same
//! `BENCH_perf.json` document `perf_baseline` writes, under one
//! labelled run.
//!
//! With `--addr HOST:PORT` the serve modes go over TCP to an already
//! running `serve` process (one connection per session) instead of an
//! in-process pool; `--shutdown` then stops that server afterwards.
//! `--snapshot-check` additionally proves the snapshot contract for
//! every session before measuring: save at the midpoint, restore into a
//! fresh session, finish, and require statistics bit-identical to the
//! uninterrupted plain run.
//!
//! `--sweep N1,N2,...` switches to scale-sweep mode: for each point N,
//! `--connections C` driver threads each multiplex ~N/C concurrent
//! sessions over a single connection (all sessions open before any
//! runs, `Run` fuel slices round-robin across them), and the point is
//! appended as its own run labelled `LABEL-nN` with `native` and
//! `serve-aggregate` modes plus `rss_max_bytes` from the server's
//! `Stats` reply. Every point asserts a zero session-table leak: the
//! server's live-session count must return to its pre-point value after
//! the closes.
//!
//! `--warm-start` switches to fleet warm-start measurement: for every
//! workload in the suite, one cold session runs to completion and
//! publishes its warm state into the server's profile store, then one
//! pre-warmed session (`SessionConfig::prewarm`) runs the identical
//! workload seeded from the aggregate. The mode records
//! blocks-to-first-trace for both (the pre-warmed number must be
//! strictly lower), asserts the pre-warmed run's final statistics are
//! bit-identical to the cold run's, and appends one run with `native`,
//! `serve-cold`, and `serve-prewarmed` modes plus a per-workload
//! `warm_start` section — the document `bench_compare --warmstart`
//! gates.
//!
//! `--chaos` switches to fault-injection mode: the full suite runs
//! against both front-ends (reactor and blocking) with every serve
//! fault seam armed at `--chaos-rate` — torn/short writes, mid-frame
//! resets, corrupted length prefixes and payloads, stalled peers,
//! shard panics, poisoned publishes — plus one directed
//! `PublishPoison` pass. Clients retry with the real `RetryPolicy`;
//! the mode asserts zero session leaks, exact open counts (re-sent
//! opens must dedup through the replay cache), and final statistics
//! bit-identical to the native reference on every session, then
//! appends one run with a `chaos` section — the document
//! `bench_compare --chaos` gates.
//!
//! `--console` redraws the self-profiler's stage table on stderr every
//! ~400ms during the default three-mode measurement (build with
//! `--features selfprof-alloc` to see allocation columns; a default build
//! shows an empty table). In a selfprof-alloc build the default flow also
//! appends an `alloc` section — serve-path bytes/allocations per block,
//! per stage — which `bench_compare --alloc` gates.
//!
//! Usage: `loadgen [--sessions N] [--shards N] [--scale smoke|small|full]
//! [--seed S] [--fuel N] [--label NAME] [--json PATH] [--addr HOST:PORT]
//! [--snapshot-check] [--shutdown] [--sweep N1,N2,...] [--connections C]
//! [--warm-start] [--chaos] [--chaos-rate R] [--console]`

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use hotpath_core::rng::Rng64;
use hotpath_selfprof as selfprof;
use hotpath_serve::{
    serve, serve_blocking, Client, ClientError, FaultPlan, FaultPoint, PrewarmOutcome, Request,
    Response, RetryPolicy, ServeConfig, ServerHandle, ServerStats, SessionConfig, SessionManager,
    SessionSnapshot,
};
use hotpath_vm::{NullObserver, RunStats, Vm};
use hotpath_workloads::{build, Scale, WorkloadName, ALL_WORKLOADS};

/// The measured modes, in report order.
const MODES: [&str; 3] = ["native", "serve-single", "serve-aggregate"];

struct Args {
    sessions: u32,
    shards: u32,
    scale: Scale,
    seed: u64,
    fuel: Option<u64>,
    label: String,
    json: PathBuf,
    addr: Option<String>,
    snapshot_check: bool,
    shutdown: bool,
    sweep: Option<Vec<u32>>,
    connections: u32,
    warm_start: bool,
    chaos: bool,
    chaos_rate: f64,
    console: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 4,
        shards: 4,
        scale: Scale::Small,
        seed: 42,
        fuel: None,
        label: "serve".to_string(),
        json: PathBuf::from("BENCH_perf.json"),
        addr: None,
        snapshot_check: false,
        shutdown: false,
        sweep: None,
        connections: 16,
        warm_start: false,
        chaos: false,
        chaos_rate: 0.05,
        console: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--sessions" => {
                args.sessions = value("--sessions").parse().expect("--sessions: number");
                assert!(args.sessions > 0, "--sessions must be positive");
            }
            "--shards" => {
                args.shards = value("--shards").parse().expect("--shards: number");
                assert!(args.shards > 0, "--shards must be positive");
            }
            "--scale" => {
                args.scale = match value("--scale").as_str() {
                    "smoke" => Scale::Smoke,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => panic!("unknown scale `{other}` (smoke|small|full)"),
                }
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed: number"),
            "--fuel" => args.fuel = Some(value("--fuel").parse().expect("--fuel: number")),
            "--label" => args.label = value("--label"),
            "--json" => args.json = PathBuf::from(value("--json")),
            "--addr" => args.addr = Some(value("--addr")),
            "--snapshot-check" => args.snapshot_check = true,
            "--shutdown" => args.shutdown = true,
            "--sweep" => {
                let points: Vec<u32> = value("--sweep")
                    .split(',')
                    .map(|p| p.trim().parse().expect("--sweep: comma-separated numbers"))
                    .collect();
                assert!(!points.is_empty(), "--sweep needs at least one point");
                assert!(
                    points.iter().all(|&n| n > 0),
                    "--sweep points must be positive"
                );
                args.sweep = Some(points);
            }
            "--connections" => {
                args.connections = value("--connections")
                    .parse()
                    .expect("--connections: number");
                assert!(args.connections > 0, "--connections must be positive");
            }
            "--warm-start" => args.warm_start = true,
            "--console" => args.console = true,
            "--chaos" => args.chaos = true,
            "--chaos-rate" => {
                args.chaos_rate = value("--chaos-rate").parse().expect("--chaos-rate: number");
                assert!(
                    (0.0..=1.0).contains(&args.chaos_rate),
                    "--chaos-rate must be in [0, 1]"
                );
            }
            other => panic!(
                "unknown argument `{other}` (usage: [--sessions N] [--shards N] \
                 [--scale smoke|small|full] [--seed S] [--fuel N] [--label NAME] \
                 [--json PATH] [--addr HOST:PORT] [--snapshot-check] [--shutdown] \
                 [--sweep N1,N2,...] [--connections C] [--warm-start] \
                 [--chaos] [--chaos-rate R] [--console])"
            ),
        }
    }
    args
}

/// The deterministic session plan: session i runs `plan[i]`, a seeded
/// shuffle of the suite repeated as often as needed.
fn session_plan(sessions: u32, seed: u64) -> Vec<WorkloadName> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut plan = Vec::with_capacity(sessions as usize);
    let mut deck: Vec<WorkloadName> = Vec::new();
    for _ in 0..sessions {
        if deck.is_empty() {
            deck = ALL_WORKLOADS.to_vec();
            // Fisher–Yates, driven by the seeded generator.
            for i in (1..deck.len()).rev() {
                let j = rng.gen_range(0..=i);
                deck.swap(i, j);
            }
        }
        plan.push(deck.pop().expect("deck refilled above"));
    }
    plan
}

/// One serving endpoint: either the in-process pool or a TCP connection.
/// Each driver thread gets its own (threads never share a connection).
enum Endpoint {
    Local(Arc<SessionManager>),
    Remote(Box<Client>),
}

impl Endpoint {
    fn call(&mut self, request: Request) -> Response {
        match self {
            Endpoint::Local(manager) => manager.request(request),
            Endpoint::Remote(client) => client.request(&request).expect("server I/O"),
        }
    }

    /// Retries `Busy` — loadgen measures throughput under admission
    /// control, so waiting out backpressure is the workload's job.
    fn call_patient(&mut self, request: Request) -> Response {
        loop {
            match self.call(request.clone()) {
                Response::Busy => std::thread::sleep(std::time::Duration::from_millis(1)),
                response => return response,
            }
        }
    }
}

fn open(endpoint: &mut Endpoint, name: WorkloadName, scale: Scale) -> u64 {
    match endpoint.call_patient(Request::Open {
        config: SessionConfig::exec(name, scale),
    }) {
        Response::Opened { session, .. } => session,
        other => panic!("open {name} failed: {other:?}"),
    }
}

/// Runs a session to completion in `fuel` slices; returns final stats.
fn finish(endpoint: &mut Endpoint, session: u64, fuel: Option<u64>) -> RunStats {
    loop {
        match endpoint.call_patient(Request::Run { session, fuel }) {
            Response::Ran { done: true, stats } => return stats,
            Response::Ran { done: false, .. } => {}
            other => panic!("run failed: {other:?}"),
        }
    }
}

/// Opens, completes, and closes one session; returns its block count.
fn drive(endpoint: &mut Endpoint, name: WorkloadName, scale: Scale, fuel: Option<u64>) -> u64 {
    let session = open(endpoint, name, scale);
    let stats = finish(endpoint, session, fuel);
    endpoint.call_patient(Request::Close { session });
    stats.blocks_executed
}

/// The snapshot contract, proven end to end for one workload: run to the
/// midpoint, snapshot, restore into a fresh session, finish — final
/// statistics must be bit-identical to the uninterrupted plain run.
fn snapshot_check(endpoint: &mut Endpoint, name: WorkloadName, scale: Scale, reference: &RunStats) {
    let session = open(endpoint, name, scale);
    match endpoint.call_patient(Request::Run {
        session,
        fuel: Some(reference.blocks_executed / 2),
    }) {
        Response::Ran { done, .. } => assert!(!done, "{name}: midpoint completed the run"),
        other => panic!("{name}: midpoint run failed: {other:?}"),
    }
    let Response::SnapshotBlob { blob } = endpoint.call_patient(Request::Snapshot { session })
    else {
        panic!("{name}: snapshot failed")
    };
    SessionSnapshot::decode(&blob).unwrap_or_else(|e| panic!("{name}: bad blob: {e}"));
    let restored = match endpoint.call_patient(Request::Restore { blob }) {
        Response::Opened { session, .. } => session,
        other => panic!("{name}: restore failed: {other:?}"),
    };
    let stats = finish(endpoint, restored, None);
    assert_eq!(
        &stats, reference,
        "{name}: restored run diverged from the uninterrupted run"
    );
    endpoint.call_patient(Request::Close { session });
    endpoint.call_patient(Request::Close { session: restored });
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Appends one rendered run object to the shared perf document, same
/// format as `perf_baseline` (creates the document when absent).
fn append_run(json: &PathBuf, run_json: &str, label: &str) {
    let existing = fs::read_to_string(json).ok();
    let doc = match existing {
        Some(prev) => {
            let trimmed = prev.trim_end();
            let body = trimmed
                .strip_suffix("\n  ]\n}")
                .or_else(|| trimmed.strip_suffix("]\n}"))
                .unwrap_or_else(|| {
                    panic!(
                        "{} exists but is not a perf_baseline document",
                        json.display()
                    )
                })
                .trim_end();
            format!("{body},\n{run_json}\n  ]\n}}\n")
        }
        None => format!("{{\n  \"runs\": [\n{run_json}\n  ]\n}}\n"),
    };
    fs::write(json, doc).expect("write json");
    eprintln!("[loadgen] appended run `{label}` to {}", json.display());
}

fn shutdown_remote(addr: &str) {
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown_server().expect("shutdown");
    eprintln!("[loadgen] server at {addr} shut down");
}

/// The server's whole-pool counters (used for the sweep's leak check and
/// peak-RSS reading).
fn server_stats(endpoint: &mut Endpoint) -> ServerStats {
    match endpoint.call_patient(Request::Stats) {
        Response::ServerStats(stats) => stats,
        other => panic!("stats failed: {other:?}"),
    }
}

/// The sequential bare-VM reference for sweep mode, measured once per
/// invocation: per-workload block counts and the aggregate blocks/sec.
/// Sweep points reuse it instead of re-running N native executions —
/// the native rate is scale-invariant, only the block total grows.
struct NativeRef {
    blocks: Vec<u64>,
    rate: f64,
}

fn measure_native(scale: Scale) -> NativeRef {
    let programs: Vec<_> = ALL_WORKLOADS
        .iter()
        .map(|&name| build(name, scale).program)
        .collect();
    let start = Instant::now();
    let mut blocks = Vec::with_capacity(programs.len());
    for (program, name) in programs.iter().zip(ALL_WORKLOADS) {
        let stats = Vm::new(program)
            .run(&mut NullObserver)
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        blocks.push(stats.blocks_executed);
    }
    let secs = start.elapsed().as_secs_f64();
    let total: u64 = blocks.iter().sum();
    NativeRef {
        blocks,
        rate: total as f64 / secs,
    }
}

impl NativeRef {
    /// Total dynamic blocks a plan of workloads will execute.
    fn plan_blocks(&self, plan: &[WorkloadName]) -> u64 {
        plan.iter()
            .map(|&name| {
                let i = ALL_WORKLOADS
                    .iter()
                    .position(|&n| n == name)
                    .expect("workload in suite");
                self.blocks[i]
            })
            .sum()
    }
}

/// One sweep driver: its share of the point's sessions, multiplexed
/// over a single connection. Opens everything up front, waits at the
/// barrier so all N sessions across all drivers are concurrently open
/// before any runs, then round-robins `Run` fuel slices and closes each
/// session as it finishes. Returns the blocks its sessions executed.
fn sweep_driver(
    endpoint: &mut Endpoint,
    names: &[WorkloadName],
    scale: Scale,
    fuel: Option<u64>,
    all_open: &Barrier,
) -> u64 {
    let mut live: Vec<u64> = names
        .iter()
        .map(|&name| open(endpoint, name, scale))
        .collect();
    all_open.wait();
    let mut blocks = 0u64;
    while !live.is_empty() {
        let mut still = Vec::with_capacity(live.len());
        for &session in &live {
            match endpoint.call_patient(Request::Run { session, fuel }) {
                Response::Ran { done: true, stats } => {
                    blocks += stats.blocks_executed;
                    endpoint.call_patient(Request::Close { session });
                }
                Response::Ran { done: false, .. } => still.push(session),
                other => panic!("run failed: {other:?}"),
            }
        }
        live = still;
    }
    blocks
}

struct SweepPoint {
    secs: f64,
    total_blocks: u64,
    rss_max_bytes: u64,
    connections: u32,
}

/// Runs one sweep point: N concurrent sessions over C connections.
/// Asserts the block total matches the native reference and that the
/// server's live-session count returns to its pre-point value (zero
/// session-table leak).
fn sweep_point(args: &Args, pool: &Option<Arc<SessionManager>>, n: u32) -> SweepPoint {
    let plan = session_plan(n, args.seed);
    let chunk = plan.len().div_ceil(args.connections.min(n) as usize);
    // The last chunk may absorb several drivers' worth of rounding, so
    // the real driver count is however many chunks fall out — sizing
    // the barrier off the request would deadlock it.
    let chunks: Vec<Vec<WorkloadName>> = plan.chunks(chunk).map(<[_]>::to_vec).collect();
    let drivers = chunks.len();
    let make_endpoint = || match (&args.addr, pool) {
        (Some(addr), _) => Endpoint::Remote(Box::new(Client::connect(addr).expect("connect"))),
        (None, Some(pool)) => Endpoint::Local(Arc::clone(pool)),
        (None, None) => unreachable!(),
    };

    let mut control = make_endpoint();
    let before = server_stats(&mut control);

    // All drivers (plus this thread, which starts the clock) rendezvous
    // once every session is open — the point measures N *concurrent*
    // sessions, not a staggered trickle.
    let all_open = Arc::new(Barrier::new(drivers + 1));
    let threads: Vec<_> = chunks
        .into_iter()
        .map(|names| {
            let (scale, fuel) = (args.scale, args.fuel);
            let barrier = Arc::clone(&all_open);
            let mut endpoint = make_endpoint();
            std::thread::spawn(move || sweep_driver(&mut endpoint, &names, scale, fuel, &barrier))
        })
        .collect();
    all_open.wait();
    let start = Instant::now();
    let total_blocks: u64 = threads
        .into_iter()
        .map(|t| t.join().expect("sweep driver"))
        .sum();
    let secs = start.elapsed().as_secs_f64();

    let after = server_stats(&mut control);
    assert_eq!(
        after.live_sessions, before.live_sessions,
        "session-table leak at n={n}: {} live before, {} after",
        before.live_sessions, after.live_sessions
    );
    assert_eq!(
        after.sessions_opened - before.sessions_opened,
        u64::from(n),
        "open count drifted at n={n}"
    );
    SweepPoint {
        secs,
        total_blocks,
        rss_max_bytes: after.rss_max_bytes,
        connections: drivers as u32,
    }
}

/// Sweep mode: one labelled run per point, `native` + `serve-aggregate`
/// modes, `LABEL-nN` labels — the curve `bench_compare --curve` gates.
fn run_sweep(args: &Args, points: &[u32]) {
    let native = measure_native(args.scale);
    eprintln!(
        "[loadgen] sweep {:?} connections={} scale={}: native reference {:.0} blocks/sec",
        points,
        args.connections,
        scale_name(args.scale),
        native.rate
    );
    // Local mode sizes one shared pool for the largest point; remote
    // mode trusts the server's own --max-sessions.
    let pool = args.addr.is_none().then(|| {
        let largest = *points.iter().max().expect("nonempty sweep") as usize;
        let per_shard = (largest / args.shards as usize + 1).max(64);
        Arc::new(SessionManager::new(ServeConfig {
            shards: args.shards,
            max_sessions_per_shard: per_shard,
            ..ServeConfig::default()
        }))
    });

    println!(
        "\n=== loadgen sweep: {} ({} connections, {} shards, scale {}) ===",
        args.label,
        args.connections,
        args.shards,
        scale_name(args.scale)
    );
    println!(
        "{:>9} {:>10} {:>16} {:>12}",
        "sessions", "secs", "blocks/sec", "peak rss"
    );
    for &n in points {
        let point = sweep_point(args, &pool, n);
        let expected = native.plan_blocks(&session_plan(n, args.seed));
        assert_eq!(
            point.total_blocks, expected,
            "n={n}: concurrent sessions diverged from the native block total"
        );
        let rate = point.total_blocks as f64 / point.secs;
        let native_secs = point.total_blocks as f64 / native.rate;
        println!(
            "{:>9} {:>10.3} {:>16.0} {:>9} MiB",
            n,
            point.secs,
            rate,
            point.rss_max_bytes >> 20
        );

        let label = format!("{}-n{}", args.label, n);
        let mut run_json = String::new();
        let _ = writeln!(run_json, "    {{");
        let _ = writeln!(run_json, "      \"label\": \"{label}\",");
        let _ = writeln!(run_json, "      \"scale\": \"{}\",", scale_name(args.scale));
        let _ = writeln!(run_json, "      \"sessions\": {n},");
        let _ = writeln!(run_json, "      \"shards\": {},", args.shards);
        let _ = writeln!(run_json, "      \"connections\": {},", point.connections);
        let _ = writeln!(run_json, "      \"seed\": {},", args.seed);
        let _ = writeln!(
            run_json,
            "      \"rss_max_bytes\": {},",
            point.rss_max_bytes
        );
        let _ = writeln!(run_json, "      \"total_blocks\": {},", point.total_blocks);
        let _ = writeln!(run_json, "      \"modes\": {{");
        let _ = writeln!(
            run_json,
            "        \"native\": {{\"secs\": {native_secs:.6}, \"blocks_per_sec\": {:.0}}},",
            native.rate
        );
        let _ = writeln!(
            run_json,
            "        \"serve-aggregate\": {{\"secs\": {:.6}, \"blocks_per_sec\": {rate:.0}}}",
            point.secs
        );
        let _ = writeln!(run_json, "      }}");
        let _ = write!(run_json, "    }}");
        append_run(&args.json, &run_json, &label);
    }
}

/// Fuel slice while hunting for a session's first fragment install:
/// fine enough to resolve blocks-to-first-trace, coarse enough that the
/// per-slice query round-trips do not dominate the measurement.
const FIRST_TRACE_SLICE: u64 = 256;

/// One session driven to completion while watching for its first trace.
struct WarmRun {
    /// `blocks_executed` at the first status showing an installed
    /// fragment (0 when the session was opened pre-warmed).
    first_trace: u64,
    /// Wall seconds from open to halt.
    secs: f64,
    /// Final execution statistics.
    stats: RunStats,
}

/// Opens one session (optionally pre-warmed from the fleet profile
/// store), records the blocks executed when the first fragment install
/// becomes visible, runs it to completion, optionally publishes its
/// warm state back into the store, and closes it.
fn warm_run(
    endpoint: &mut Endpoint,
    name: WorkloadName,
    scale: Scale,
    prewarm: bool,
    publish: bool,
) -> WarmRun {
    let config = SessionConfig::exec(name, scale).with_prewarm(prewarm);
    let start = Instant::now();
    let session = match endpoint.call_patient(Request::Open { config }) {
        Response::Opened {
            session,
            prewarm: outcome,
            ..
        } => {
            if prewarm {
                assert!(
                    matches!(outcome, PrewarmOutcome::Warmed { .. }),
                    "{name}: expected a pre-warmed session, got {outcome:?}"
                );
            }
            session
        }
        other => panic!("open {name} failed: {other:?}"),
    };
    let first_trace = loop {
        let status = match endpoint.call_patient(Request::Query { session }) {
            Response::Status(status) => status,
            other => panic!("query {name} failed: {other:?}"),
        };
        if status.installs >= 1 {
            break status.stats.blocks_executed;
        }
        assert!(
            !status.done,
            "{name}: session completed without installing a single fragment"
        );
        match endpoint.call_patient(Request::Run {
            session,
            fuel: Some(FIRST_TRACE_SLICE),
        }) {
            Response::Ran { .. } => {}
            other => panic!("run {name} failed: {other:?}"),
        }
    };
    let stats = finish(endpoint, session, None);
    let secs = start.elapsed().as_secs_f64();
    if publish {
        match endpoint.call_patient(Request::PublishProfile { session }) {
            Response::ProfilePublished { .. } => {}
            other => panic!("publish {name} failed: {other:?}"),
        }
    }
    endpoint.call_patient(Request::Close { session });
    WarmRun {
        first_trace,
        secs,
        stats,
    }
}

/// Warm-start mode: for every workload in the suite, run one cold
/// session (publishing its warm state into the fleet profile store) and
/// one pre-warmed session, and record blocks-to-first-trace plus
/// throughput for both passes. Asserts the contract end to end: the
/// pre-warmed session must reach its first trace strictly earlier, and
/// its final statistics must be bit-identical to the cold run's.
fn run_warm_start(args: &Args) {
    let native = measure_native(args.scale);
    let pool = args.addr.is_none().then(|| {
        Arc::new(SessionManager::new(ServeConfig {
            shards: args.shards,
            ..ServeConfig::default()
        }))
    });
    let mut endpoint = match (&args.addr, &pool) {
        (Some(addr), _) => Endpoint::Remote(Box::new(Client::connect(addr).expect("connect"))),
        (None, Some(pool)) => Endpoint::Local(Arc::clone(pool)),
        (None, None) => unreachable!(),
    };

    println!(
        "\n=== loadgen warm-start: {} ({} shards, scale {}) ===",
        args.label,
        args.shards,
        scale_name(args.scale)
    );
    println!(
        "{:<12} {:>16} {:>20} {:>12}",
        "workload", "cold 1st trace", "prewarmed 1st trace", "speedup"
    );
    let mut points: Vec<(WorkloadName, u64, u64)> = Vec::new();
    let (mut cold_secs, mut warm_secs, mut total_blocks) = (0.0f64, 0.0f64, 0u64);
    for (i, &name) in ALL_WORKLOADS.iter().enumerate() {
        let cold = warm_run(&mut endpoint, name, args.scale, false, true);
        let warm = warm_run(&mut endpoint, name, args.scale, true, false);
        assert_eq!(
            cold.stats.blocks_executed, native.blocks[i],
            "{name}: cold serve run diverged from the native block total"
        );
        assert_eq!(
            warm.stats, cold.stats,
            "{name}: pre-warmed run diverged from the cold run"
        );
        assert!(
            warm.first_trace < cold.first_trace,
            "{name}: pre-warmed first trace at {} blocks is not strictly \
             below the cold {} blocks",
            warm.first_trace,
            cold.first_trace
        );
        println!(
            "{:<12} {:>16} {:>20} {:>11.1}x",
            name.as_str(),
            cold.first_trace,
            warm.first_trace,
            cold.first_trace as f64 / (warm.first_trace as f64).max(1.0)
        );
        cold_secs += cold.secs;
        warm_secs += warm.secs;
        total_blocks += cold.stats.blocks_executed;
        points.push((name, cold.first_trace, warm.first_trace));
    }
    let (cold_rate, warm_rate) = (
        total_blocks as f64 / cold_secs,
        total_blocks as f64 / warm_secs,
    );
    println!("\n{:<16} {:>10} {:>16}", "mode", "secs", "blocks/sec");
    let native_secs = total_blocks as f64 / native.rate;
    for (mode, secs, rate) in [
        ("native", native_secs, native.rate),
        ("serve-cold", cold_secs, cold_rate),
        ("serve-prewarmed", warm_secs, warm_rate),
    ] {
        println!("{mode:<16} {secs:>10.3} {rate:>16.0}");
    }

    let mut run_json = String::new();
    let _ = writeln!(run_json, "    {{");
    let _ = writeln!(run_json, "      \"label\": \"{}\",", args.label);
    let _ = writeln!(run_json, "      \"scale\": \"{}\",", scale_name(args.scale));
    let _ = writeln!(run_json, "      \"sessions\": {},", ALL_WORKLOADS.len());
    let _ = writeln!(run_json, "      \"shards\": {},", args.shards);
    let _ = writeln!(run_json, "      \"seed\": {},", args.seed);
    let _ = writeln!(run_json, "      \"total_blocks\": {},", total_blocks);
    let _ = writeln!(run_json, "      \"warm_start\": {{");
    for (i, (name, cold, warm)) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            run_json,
            "        \"{}\": {{\"cold_blocks_to_first_trace\": {cold}, \
             \"prewarmed_blocks_to_first_trace\": {warm}}}{comma}",
            name.as_str()
        );
    }
    let _ = writeln!(run_json, "      }},");
    let _ = writeln!(run_json, "      \"modes\": {{");
    for (i, (mode, secs, rate)) in [
        ("native", native_secs, native.rate),
        ("serve-cold", cold_secs, cold_rate),
        ("serve-prewarmed", warm_secs, warm_rate),
    ]
    .into_iter()
    .enumerate()
    {
        let comma = if i < 2 { "," } else { "" };
        let _ = writeln!(
            run_json,
            "        \"{mode}\": {{\"secs\": {secs:.6}, \"blocks_per_sec\": {rate:.0}}}{comma}"
        );
    }
    let _ = writeln!(run_json, "      }}");
    let _ = write!(run_json, "    }}");
    append_run(&args.json, &run_json, &args.label);
}

/// Fuel slice for chaos drivers: small enough that every session crosses
/// many request/response boundaries (each one a fault opportunity).
const CHAOS_FUEL: u64 = 256;

/// What one chaos driver observed for its session.
struct ChaosDriver {
    stats: RunStats,
    quarantined: bool,
    retries: u64,
    reconnects: u64,
}

/// Drives one workload to completion against a chaos-armed server with a
/// retrying client, publishes its warm state, and closes the session.
fn chaos_drive(
    addr: std::net::SocketAddr,
    name: WorkloadName,
    scale: Scale,
    seed: u64,
) -> ChaosDriver {
    let policy = RetryPolicy::default().with_seed(seed);
    let mut client =
        Client::connect_with(addr, policy).unwrap_or_else(|e| panic!("{name}: connect: {e}"));
    let (session, _) = client
        .open(SessionConfig::exec(name, scale))
        .unwrap_or_else(|e| panic!("{name}: open under chaos: {e}"));
    let stats = loop {
        match client.run(session, Some(CHAOS_FUEL)) {
            Ok((true, stats)) => break stats,
            Ok((false, _)) => {}
            // An exhausted attempt budget is safe to retry as a fresh
            // logical call: re-running a fuel slice only advances the
            // session (the slicing invariant), and `Run` on a finished
            // session re-reports its final statistics.
            Err(ClientError::Exhausted { .. }) => {}
            Err(e) => panic!("{name}: run under chaos failed: {e}"),
        }
    };
    let (_, _, _, quarantined) = client
        .publish_profile(session)
        .unwrap_or_else(|e| panic!("{name}: publish under chaos: {e}"));
    client
        .close(session)
        .unwrap_or_else(|e| panic!("{name}: close under chaos: {e}"));
    ChaosDriver {
        stats,
        quarantined,
        retries: client.retries(),
        reconnects: client.reconnects(),
    }
}

/// Aggregate outcome of one chaos pass over a front-end.
struct ChaosOutcome {
    secs: f64,
    blocks: u64,
    retries: u64,
    reconnects: u64,
    shards_restarted: u64,
    sessions_readmitted: u64,
    profiles_quarantined: u64,
}

/// One chaos pass: the full suite against one front-end, one driver
/// thread per workload, every connection and shard fault-armed. Asserts
/// zero session leaks, an exact open count (the replay cache must absorb
/// every re-sent open), and per-workload final statistics bit-identical
/// to the native reference.
fn chaos_front(
    front: &str,
    mut handle: ServerHandle,
    args: &Args,
    reference: &[RunStats],
) -> ChaosOutcome {
    let addr = handle.addr();
    let mut control =
        Client::connect_with(addr, RetryPolicy::default().with_seed(args.seed ^ 0xC0C0))
            .expect("control connect");
    let before = control.stats().expect("stats before");

    let start = Instant::now();
    let drivers: Vec<_> = ALL_WORKLOADS
        .iter()
        .enumerate()
        .map(|(i, &name)| {
            let (scale, seed) = (args.scale, args.seed ^ (i as u64 + 1));
            std::thread::spawn(move || chaos_drive(addr, name, scale, seed))
        })
        .collect();
    let results: Vec<ChaosDriver> = drivers
        .into_iter()
        .map(|d| d.join().expect("chaos driver"))
        .collect();
    let secs = start.elapsed().as_secs_f64();

    for ((result, expect), name) in results.iter().zip(reference).zip(ALL_WORKLOADS) {
        assert_eq!(
            &result.stats, expect,
            "{front}: {name} diverged from the native run under chaos"
        );
    }

    let after = control.stats().expect("stats after");
    assert_eq!(
        after.live_sessions, before.live_sessions,
        "{front}: session leak under chaos ({} live before, {} after)",
        before.live_sessions, after.live_sessions
    );
    assert_eq!(
        after.sessions_opened - before.sessions_opened,
        ALL_WORKLOADS.len() as u64,
        "{front}: open count drifted under chaos (re-sent opens must dedup)"
    );
    let quarantined_seen = results.iter().filter(|r| r.quarantined).count() as u64;
    assert_eq!(
        after.profiles_quarantined, quarantined_seen,
        "{front}: quarantine bucket disagrees with client-observed quarantined publishes"
    );
    let (retries, reconnects) = (control.retries(), control.reconnects());
    drop(control);
    handle.stop();

    ChaosOutcome {
        secs,
        blocks: results.iter().map(|r| r.stats.blocks_executed).sum(),
        retries: results.iter().map(|r| r.retries).sum::<u64>() + retries,
        reconnects: results.iter().map(|r| r.reconnects).sum::<u64>() + reconnects,
        shards_restarted: after.shards_restarted - before.shards_restarted,
        sessions_readmitted: after.sessions_readmitted - before.sessions_readmitted,
        profiles_quarantined: after.profiles_quarantined,
    }
}

/// Directed quarantine coverage: with `PublishPoison` firing at rate
/// 1.0, a publish must land in the quarantine bucket (and report so) —
/// the probabilistic passes cannot guarantee this class fires.
fn chaos_poison_check(args: &Args) -> u64 {
    let plan = FaultPlan::new(args.seed).with(FaultPoint::PublishPoison, 1.0);
    let pool = Arc::new(SessionManager::new(ServeConfig {
        shards: 1,
        chaos: Some(plan),
        ..ServeConfig::default()
    }));
    let mut endpoint = Endpoint::Local(Arc::clone(&pool));
    let name = ALL_WORKLOADS[0];
    let session = open(&mut endpoint, name, args.scale);
    finish(&mut endpoint, session, args.fuel);
    let quarantined = match endpoint.call_patient(Request::PublishProfile { session }) {
        Response::ProfilePublished { quarantined, .. } => quarantined,
        other => panic!("poison publish failed: {other:?}"),
    };
    assert!(
        quarantined,
        "PublishPoison at rate 1.0 must quarantine the publish"
    );
    let stats = server_stats(&mut endpoint);
    assert_eq!(
        stats.profiles_quarantined, 1,
        "the quarantine bucket must hold the poisoned publish"
    );
    endpoint.call_patient(Request::Close { session });
    stats.profiles_quarantined
}

/// Chaos mode: the full suite against both front-ends with every serve
/// fault seam armed (torn/short writes, mid-frame resets, corrupted
/// frames, stalled peers, shard panics, poisoned publishes), plus a
/// directed `PublishPoison` pass. Asserts zero session leaks, exact open
/// counts, and bit-identical final statistics on every session, then
/// appends one run with a `chaos` section — the document
/// `bench_compare --chaos` gates.
fn run_chaos(args: &Args) {
    assert!(
        args.addr.is_none(),
        "--chaos runs its own servers; drop --addr"
    );
    assert!(
        args.chaos_rate > 0.0,
        "--chaos needs a positive --chaos-rate"
    );

    // Per-workload native references: chaos asserts full bit-identity of
    // the final statistics, not just block totals.
    let mut reference: Vec<RunStats> = Vec::with_capacity(ALL_WORKLOADS.len());
    let native_start = Instant::now();
    for name in ALL_WORKLOADS {
        let program = build(name, args.scale).program;
        reference.push(
            Vm::new(&program)
                .run(&mut NullObserver)
                .unwrap_or_else(|e| panic!("{name} failed: {e}")),
        );
    }
    let native_secs = native_start.elapsed().as_secs_f64();
    let suite_blocks: u64 = reference.iter().map(|s| s.blocks_executed).sum();
    let native_rate = suite_blocks as f64 / native_secs;

    // Injected shard panics are expected here; keep their default-hook
    // backtraces out of the report. Every other panic keeps the default.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected shard panic"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected shard panic"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let plan = FaultPlan::chaos(args.seed, args.chaos_rate);
    let config = || ServeConfig {
        shards: args.shards,
        chaos: Some(plan),
        ..ServeConfig::default()
    };
    eprintln!(
        "[loadgen] chaos: seed={} rate={} shards={} scale={}",
        args.seed,
        args.chaos_rate,
        args.shards,
        scale_name(args.scale)
    );
    let fronts = [
        (
            "serve-reactor",
            chaos_front(
                "serve-reactor",
                serve("127.0.0.1:0", config()).expect("bind reactor front"),
                args,
                &reference,
            ),
        ),
        (
            "serve-blocking",
            chaos_front(
                "serve-blocking",
                serve_blocking("127.0.0.1:0", config()).expect("bind blocking front"),
                args,
                &reference,
            ),
        ),
    ];
    let forced_quarantine = chaos_poison_check(args);

    let secs: f64 = fronts.iter().map(|(_, o)| o.secs).sum();
    let blocks: u64 = fronts.iter().map(|(_, o)| o.blocks).sum();
    let retries: u64 = fronts.iter().map(|(_, o)| o.retries).sum();
    let reconnects: u64 = fronts.iter().map(|(_, o)| o.reconnects).sum();
    let shards_restarted: u64 = fronts.iter().map(|(_, o)| o.shards_restarted).sum();
    let sessions_readmitted: u64 = fronts.iter().map(|(_, o)| o.sessions_readmitted).sum();
    let profiles_quarantined: u64 = fronts
        .iter()
        .map(|(_, o)| o.profiles_quarantined)
        .sum::<u64>()
        + forced_quarantine;
    let completed = 2 * ALL_WORKLOADS.len() as u64;
    assert_eq!(blocks, 2 * suite_blocks, "chaos block total drifted");
    assert!(
        retries + reconnects + shards_restarted + profiles_quarantined > 0,
        "chaos pass observed no injected faults — raise --chaos-rate"
    );

    println!(
        "\n=== loadgen chaos: {} ({} shards, scale {}, seed {}, rate {}) ===",
        args.label,
        args.shards,
        scale_name(args.scale),
        args.seed,
        args.chaos_rate
    );
    println!(
        "{:<16} {:>8} {:>14} {:>8} {:>10} {:>9} {:>11}",
        "front", "secs", "blocks/sec", "retries", "reconnects", "restarts", "readmitted"
    );
    for (front, o) in &fronts {
        println!(
            "{:<16} {:>8.3} {:>14.0} {:>8} {:>10} {:>9} {:>11}",
            front,
            o.secs,
            o.blocks as f64 / o.secs,
            o.retries,
            o.reconnects,
            o.shards_restarted,
            o.sessions_readmitted
        );
    }
    println!(
        "{} sessions completed bit-identical, 0 leaked, {} publish(es) quarantined",
        completed, profiles_quarantined
    );

    let mut run_json = String::new();
    let _ = writeln!(run_json, "    {{");
    let _ = writeln!(run_json, "      \"label\": \"{}\",", args.label);
    let _ = writeln!(run_json, "      \"scale\": \"{}\",", scale_name(args.scale));
    let _ = writeln!(run_json, "      \"sessions\": {completed},");
    let _ = writeln!(run_json, "      \"shards\": {},", args.shards);
    let _ = writeln!(run_json, "      \"seed\": {},", args.seed);
    let _ = writeln!(run_json, "      \"total_blocks\": {blocks},");
    let _ = writeln!(run_json, "      \"chaos\": {{");
    let _ = writeln!(run_json, "        \"rate\": {},", args.chaos_rate);
    let _ = writeln!(run_json, "        \"completed\": {completed},");
    let _ = writeln!(run_json, "        \"leaked\": 0,");
    let _ = writeln!(run_json, "        \"divergent\": 0,");
    let _ = writeln!(
        run_json,
        "        \"shards_restarted\": {shards_restarted},"
    );
    let _ = writeln!(
        run_json,
        "        \"sessions_readmitted\": {sessions_readmitted},"
    );
    let _ = writeln!(
        run_json,
        "        \"profiles_quarantined\": {profiles_quarantined},"
    );
    let _ = writeln!(run_json, "        \"client_retries\": {retries},");
    let _ = writeln!(run_json, "        \"client_reconnects\": {reconnects}");
    let _ = writeln!(run_json, "      }},");
    let _ = writeln!(run_json, "      \"modes\": {{");
    let _ = writeln!(
        run_json,
        "        \"native\": {{\"secs\": {:.6}, \"blocks_per_sec\": {native_rate:.0}}},",
        blocks as f64 / native_rate
    );
    let _ = writeln!(
        run_json,
        "        \"serve-chaos\": {{\"secs\": {secs:.6}, \"blocks_per_sec\": {:.0}}}",
        blocks as f64 / secs
    );
    let _ = writeln!(run_json, "      }}");
    let _ = write!(run_json, "    }}");
    append_run(&args.json, &run_json, &args.label);
}

fn main() {
    let args = parse_args();
    if args.chaos {
        run_chaos(&args);
        return;
    }
    if args.warm_start {
        run_warm_start(&args);
        if args.shutdown {
            shutdown_remote(args.addr.as_deref().expect("--shutdown needs --addr"));
        }
        return;
    }
    if let Some(points) = args.sweep.clone() {
        run_sweep(&args, &points);
        if args.shutdown {
            shutdown_remote(args.addr.as_deref().expect("--shutdown needs --addr"));
        }
        return;
    }
    let plan = session_plan(args.sessions, args.seed);
    eprintln!(
        "[loadgen] sessions={} shards={} scale={} seed={} fuel={:?} plan={:?}",
        args.sessions,
        args.shards,
        scale_name(args.scale),
        args.seed,
        args.fuel,
        plan.iter().map(|n| n.as_str()).collect::<Vec<_>>()
    );

    // Endpoint factories. Local mode builds one pool per measured mode so
    // every mode starts cold; remote mode opens one connection per thread
    // against the long-lived server.
    let make_local = |shards: u32| {
        Arc::new(SessionManager::new(ServeConfig {
            shards,
            ..ServeConfig::default()
        }))
    };
    let connect = |addr: &str| Endpoint::Remote(Box::new(Client::connect(addr).expect("connect")));

    // native: the same instances, bare VM, and the per-workload reference
    // stats the snapshot check needs.
    let mut reference: Vec<RunStats> = Vec::with_capacity(plan.len());
    let native_start = Instant::now();
    for &name in &plan {
        let program = build(name, args.scale).program;
        let stats = Vm::new(&program)
            .run(&mut NullObserver)
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        reference.push(stats);
    }
    let native_secs = native_start.elapsed().as_secs_f64();
    let total_blocks: u64 = reference.iter().map(|s| s.blocks_executed).sum();

    if args.snapshot_check {
        let mut endpoint = match &args.addr {
            Some(addr) => connect(addr),
            None => Endpoint::Local(make_local(args.shards)),
        };
        for (&name, stats) in plan.iter().zip(&reference) {
            snapshot_check(&mut endpoint, name, args.scale, stats);
        }
        eprintln!(
            "[loadgen] snapshot-check: {} session(s) round-tripped bit-identical",
            plan.len()
        );
    }

    // Live console: redraw the self-profiler's stage table on stderr
    // while the serve modes run. Works in any build — a default build
    // just shows the empty table.
    let console_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let console = args.console.then(|| {
        let stop = Arc::clone(&console_stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                eprint!("\x1b[2J\x1b[H{}", selfprof::report().render_table());
                std::thread::sleep(std::time::Duration::from_millis(400));
            }
        })
    });

    // serve-single: sequential sessions through one shard.
    let single_pool = args.addr.is_none().then(|| make_local(1));
    let single_start = Instant::now();
    let mut single_blocks = 0u64;
    {
        let mut endpoint = match (&args.addr, &single_pool) {
            (Some(addr), _) => connect(addr),
            (None, Some(pool)) => Endpoint::Local(Arc::clone(pool)),
            (None, None) => unreachable!(),
        };
        for &name in &plan {
            single_blocks += drive(&mut endpoint, name, args.scale, args.fuel);
        }
    }
    let single_secs = single_start.elapsed().as_secs_f64();

    // serve-aggregate: all sessions concurrently, one driver thread each.
    let aggregate_pool = args.addr.is_none().then(|| make_local(args.shards));
    let aggregate_start = Instant::now();
    let drivers: Vec<_> = plan
        .iter()
        .map(|&name| {
            let endpoint = match (&args.addr, &aggregate_pool) {
                (Some(addr), _) => connect(addr),
                (None, Some(pool)) => Endpoint::Local(Arc::clone(pool)),
                (None, None) => unreachable!(),
            };
            let (scale, fuel) = (args.scale, args.fuel);
            std::thread::spawn(move || {
                let mut endpoint = endpoint;
                drive(&mut endpoint, name, scale, fuel)
            })
        })
        .collect();
    let aggregate_blocks: u64 = drivers
        .into_iter()
        .map(|d| d.join().expect("driver thread"))
        .sum();
    let aggregate_secs = aggregate_start.elapsed().as_secs_f64();
    assert_eq!(
        aggregate_blocks, total_blocks,
        "concurrent sessions diverged from the native block total"
    );

    console_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(redraw) = console {
        let _ = redraw.join();
        eprintln!("\n[selfprof] final stage table:");
        eprint!("{}", selfprof::report().render_table());
    }

    if args.shutdown {
        shutdown_remote(args.addr.as_deref().expect("--shutdown needs --addr"));
    }

    println!(
        "\n=== loadgen: {} ({} sessions, {} shards, scale {}) ===",
        args.label,
        args.sessions,
        args.shards,
        scale_name(args.scale)
    );
    println!("{:<16} {:>10} {:>16}", "mode", "secs", "blocks/sec");
    let mut run_json = String::new();
    let _ = writeln!(run_json, "    {{");
    let _ = writeln!(run_json, "      \"label\": \"{}\",", args.label);
    let _ = writeln!(run_json, "      \"scale\": \"{}\",", scale_name(args.scale));
    let _ = writeln!(run_json, "      \"sessions\": {},", args.sessions);
    let _ = writeln!(run_json, "      \"shards\": {},", args.shards);
    let _ = writeln!(run_json, "      \"seed\": {},", args.seed);
    let _ = writeln!(run_json, "      \"total_blocks\": {},", total_blocks);
    let _ = writeln!(run_json, "      \"modes\": {{");
    for (i, (mode, secs)) in MODES
        .iter()
        .zip([native_secs, single_secs, aggregate_secs])
        .enumerate()
    {
        let rate = total_blocks as f64 / secs;
        println!("{mode:<16} {secs:>10.3} {rate:>16.0}");
        let comma = if i + 1 < MODES.len() { "," } else { "" };
        let _ = writeln!(
            run_json,
            "        \"{mode}\": {{\"secs\": {secs:.6}, \"blocks_per_sec\": {rate:.0}}}{comma}"
        );
    }
    // Serve-path allocation profile (selfprof-alloc builds only): total
    // and per-stage bytes/allocations over the blocks the serve modes
    // executed (serve-single + serve-aggregate). `bench_compare --alloc`
    // gates the two per-block ratios.
    if selfprof::alloc_tracking() {
        let report = selfprof::report();
        let serve_stages = [
            selfprof::Stage::FrameDecode,
            selfprof::Stage::ShardDispatch,
            selfprof::Stage::VmSlice,
            selfprof::Stage::SnapshotSave,
            selfprof::Stage::SnapshotRestore,
            selfprof::Stage::ProfilePublish,
            selfprof::Stage::Prewarm,
        ];
        let mut alloc_bytes = 0u64;
        let mut alloc_count = 0u64;
        let mut stage_rows = Vec::new();
        for stage in serve_stages {
            if let Some(s) = report.stage(stage.name()) {
                alloc_bytes += s.alloc_bytes;
                alloc_count += s.alloc_count;
                stage_rows.push((stage.name(), s.alloc_bytes, s.alloc_count));
            }
        }
        let served_blocks = single_blocks + aggregate_blocks;
        let bytes_per_block = alloc_bytes as f64 / served_blocks.max(1) as f64;
        let allocs_per_block = alloc_count as f64 / served_blocks.max(1) as f64;
        println!(
            "serve-path alloc {alloc_bytes} bytes / {alloc_count} allocs over {served_blocks} \
             blocks ({bytes_per_block:.2} B/blk, {allocs_per_block:.4} allocs/blk)"
        );
        let _ = writeln!(run_json, "      }},");
        let _ = writeln!(run_json, "      \"alloc\": {{");
        let _ = writeln!(
            run_json,
            "        \"bytes_per_block\": {bytes_per_block:.4},"
        );
        let _ = writeln!(
            run_json,
            "        \"allocs_per_block\": {allocs_per_block:.6},"
        );
        let _ = writeln!(run_json, "        \"alloc_bytes\": {alloc_bytes},");
        let _ = writeln!(run_json, "        \"alloc_count\": {alloc_count},");
        let _ = writeln!(run_json, "        \"served_blocks\": {served_blocks},");
        let _ = writeln!(run_json, "        \"stages\": {{");
        for (i, (name, bytes, count)) in stage_rows.iter().enumerate() {
            let comma = if i + 1 < stage_rows.len() { "," } else { "" };
            let _ = writeln!(
                run_json,
                "          \"{name}\": {{\"bytes\": {bytes}, \"count\": {count}}}{comma}"
            );
        }
        let _ = writeln!(run_json, "        }}");
        let _ = writeln!(run_json, "      }}");
    } else {
        let _ = writeln!(run_json, "      }}");
    }
    let _ = write!(run_json, "    }}");

    // Append to the shared perf document, same format as perf_baseline.
    append_run(&args.json, &run_json, &args.label);
}
