//! Differential fuzzer CLI: cross-check interpreter, simulated engine,
//! and linked trace backend over seeded random programs, clean and under
//! fault injection.
//!
//! ```text
//! difffuzz [--seeds N] [--start S] [--fault-seed F] [--no-faults]
//! ```
//!
//! Exits non-zero on the first divergence, after shrinking it to the
//! smallest generator configuration that still reproduces.

use std::process::ExitCode;

use hotpath_bench::difffuzz::{check_seed, shrink, FuzzOptions, FAULT_RATES};

fn usage() -> ! {
    eprintln!("usage: difffuzz [--seeds N] [--start S] [--fault-seed F] [--no-faults]");
    std::process::exit(2);
}

fn parse_u64(value: Option<String>) -> u64 {
    let Some(v) = value else { usage() };
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    parsed.unwrap_or_else(|_| usage())
}

fn main() -> ExitCode {
    let mut seeds = 200u64;
    let mut start = 0u64;
    let mut options = FuzzOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => seeds = parse_u64(args.next()),
            "--start" => start = parse_u64(args.next()),
            "--fault-seed" => options.fault_seed = parse_u64(args.next()),
            "--no-faults" => options.faults = false,
            _ => usage(),
        }
    }

    let started = std::time::Instant::now();
    let mut blocks = 0u64;
    let mut injected = [0u64; FAULT_RATES.len()];
    let mut degraded = 0u64;
    for seed in start..start.saturating_add(seeds) {
        match check_seed(seed, &options) {
            Ok(report) => {
                blocks += report.blocks;
                degraded += u64::from(report.degraded_config);
                for (total, n) in injected.iter_mut().zip(report.injected) {
                    *total += n;
                }
            }
            Err(divergence) => {
                eprintln!("FAIL {divergence}");
                let (config, smallest) = shrink(seed, &options);
                eprintln!("  smallest reproducing generator config: {config:?}");
                eprintln!("  {smallest}");
                eprintln!(
                    "  reproduce: difffuzz --seeds 1 --start {seed} --fault-seed {:#x}",
                    options.fault_seed
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "difffuzz: {} seeds ok ({} with degrade ladder), {} reference blocks, {:.1}s",
        seeds,
        degraded,
        blocks,
        started.elapsed().as_secs_f64()
    );
    if options.faults {
        let detail: Vec<String> = FAULT_RATES
            .iter()
            .zip(injected)
            .map(|((point, _), n)| format!("{}={n}", point.as_str()))
            .collect();
        println!("difffuzz: faults injected: {}", detail.join(" "));
    }
    ExitCode::SUCCESS
}
