//! Regenerates **Figure 5**: Dynamo speedup over native execution with
//! NET and path-profile based hot path prediction, each at prediction
//! delays 10, 50, and 100, on the five benchmarks Dynamo processes
//! without bail-out (compress, li, m88ksim, perl, deltablue).
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin fig5 -- --scale full
//! ```

use hotpath_bench::{write_csv, Options};
use hotpath_dynamo::{run_dynamo, run_native, DynamoConfig, Scheme};
use hotpath_workloads::{build, WorkloadName, ALL_WORKLOADS};

const DELAYS: [u64; 3] = [10, 50, 100];

fn main() {
    let opts = Options::from_env();
    let names: Vec<WorkloadName> = ALL_WORKLOADS
        .iter()
        .copied()
        .filter(|w| w.in_dynamo_figure())
        .collect();

    // One thread per benchmark; each runs native + 6 Dynamo configs.
    // Rows are (scheme, delay, speedup %, bailed out).
    type SpeedupRows = Vec<(Scheme, u64, f64, bool)>;
    let results: Vec<(WorkloadName, SpeedupRows)> = std::thread::scope(|s| {
        let handles: Vec<_> = names
            .iter()
            .map(|&name| {
                let scale = opts.scale;
                s.spawn(move || {
                    let w = build(name, scale);
                    let native = run_native(&w.program).expect("native run");
                    let mut rows = Vec::new();
                    for scheme in [Scheme::Net, Scheme::PathProfile] {
                        for delay in DELAYS {
                            let out = run_dynamo(&w.program, &DynamoConfig::new(scheme, delay))
                                .expect("dynamo run");
                            rows.push((scheme, delay, out.speedup_percent(native), out.bailed_out));
                            eprintln!(
                                "[fig5] {:<10} {:<12} tau={:<4} speedup={:+.1}%{}",
                                name.to_string(),
                                scheme.to_string(),
                                delay,
                                out.speedup_percent(native),
                                if out.bailed_out { " (bail-out)" } else { "" }
                            );
                        }
                    }
                    (name, rows)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });

    println!("\nFigure 5. Dynamo speedup over native execution (percent)");
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "Benchmark", "NET10", "NET50", "NET100", "PP10", "PP50", "PP100"
    );
    let mut csv = Vec::new();
    let mut sums = [0.0f64; 6];
    for (name, rows) in &results {
        let mut cells = [0.0f64; 6];
        for (scheme, delay, speedup, bailed) in rows {
            let col = match (scheme, delay) {
                (Scheme::Net, 10) => 0,
                (Scheme::Net, 50) => 1,
                (Scheme::Net, 100) => 2,
                (Scheme::PathProfile, 10) => 3,
                (Scheme::PathProfile, 50) => 4,
                _ => 5,
            };
            cells[col] = *speedup;
            csv.push(format!("{name},{scheme},{delay},{speedup:.3},{bailed}"));
        }
        for (s, c) in sums.iter_mut().zip(&cells) {
            *s += c;
        }
        println!(
            "{:<10} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            name.to_string(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5]
        );
    }
    let n = results.len() as f64;
    println!(
        "{:<10} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
        "Average",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n,
        sums[5] / n
    );
    for (i, label) in [
        "NET,10",
        "NET,50",
        "NET,100",
        "PathProfile,10",
        "PathProfile,50",
        "PathProfile,100",
    ]
    .iter()
    .enumerate()
    {
        csv.push(format!("average,{label},{:.3},false", sums[i] / n));
    }
    write_csv(
        &opts.out_dir,
        "fig5_dynamo_speedup.csv",
        "benchmark,scheme,delay,speedup_pct,bailed_out",
        &csv,
    );
}
