//! Regenerates **Figure 3**: noise rate vs. profiled flow for path-profile
//! based prediction (a–b) and NET prediction (c–d).
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin fig3 -- --scale full
//! ```

use hotpath_bench::{
    ascii_chart, average_series, record_suite_parallel, sweep_suite, write_csv, Options,
};
use hotpath_core::SchemeKind;

fn main() {
    let opts = Options::from_env();
    let runs = record_suite_parallel(opts.scale);
    let swept = sweep_suite(&runs);

    let mut rows = Vec::new();
    for sr in &swept {
        for pt in &sr.points {
            rows.push(format!(
                "{},{},{},{:.4},{:.4}",
                sr.name,
                sr.scheme,
                pt.delay,
                pt.outcome.profiled_flow_pct(),
                pt.outcome.noise_rate(),
            ));
        }
    }
    write_csv(
        &opts.out_dir,
        "fig3_noise_rates.csv",
        "benchmark,scheme,delay,profiled_flow_pct,noise_rate_pct",
        &rows,
    );

    for scheme in [SchemeKind::PathProfile, SchemeKind::Net] {
        println!("\nFigure 3 ({scheme}): noise rate vs profiled flow (Average series)");
        println!("{:>8} {:>14} {:>10}", "delay", "profiled%", "noise%");
        for (delay, prof, _hit, noise) in average_series(&swept, scheme) {
            println!("{delay:>8} {prof:>13.2}% {noise:>9.2}%");
        }
    }

    let net: Vec<(f64, f64)> = average_series(&swept, SchemeKind::Net)
        .into_iter()
        .map(|(_, p, _, n)| (p, n.min(100.0)))
        .collect();
    let pp: Vec<(f64, f64)> = average_series(&swept, SchemeKind::PathProfile)
        .into_iter()
        .map(|(_, p, _, n)| (p, n.min(100.0)))
        .collect();
    println!(
        "\n{}",
        ascii_chart(
            "Figure 3 average series: N = NET, P = PathProfile",
            "profiled flow",
            "noise rate (clamped at 100%)",
            &[('P', &pp), ('N', &net)],
            72,
            20,
        )
    );

    // The paper's crossover claim: in the practical range (<=10% profiled)
    // NET's noise is comparable or better; with long delays path-profile
    // prediction becomes more accurate.
    let avg_net = average_series(&swept, SchemeKind::Net);
    let avg_pp = average_series(&swept, SchemeKind::PathProfile);
    println!("\nNoise comparison (NET - PathProfile), by delay:");
    for (n, p) in avg_net.iter().zip(&avg_pp) {
        println!(
            "  delay {:>8}: profiled {:>6.2}% vs {:>6.2}%, noise delta {:+.2}%",
            n.0,
            n.1,
            p.1,
            n.3 - p.3
        );
    }
}
