//! Regenerates **Figure 2**: hit rate vs. profiled flow for path-profile
//! based prediction (a–b) and NET prediction (c–d), sweeping prediction
//! delays from 10 to 1,000,000.
//!
//! The CSV contains every benchmark's full series; stdout prints the
//! zoomed right-hand panels (profiled flow ≤ 10%) plus the Average series,
//! which is where the paper's "virtually no difference" claim lives.
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin fig2 -- --scale full
//! ```

use hotpath_bench::{
    ascii_chart, average_series, record_suite_parallel, sweep_suite, write_csv, Options,
};
use hotpath_core::SchemeKind;

fn main() {
    let opts = Options::from_env();
    let runs = record_suite_parallel(opts.scale);
    let swept = sweep_suite(&runs);

    let mut rows = Vec::new();
    for sr in &swept {
        for pt in &sr.points {
            rows.push(format!(
                "{},{},{},{:.4},{:.4},{:.4},{:.4},{}",
                sr.name,
                sr.scheme,
                pt.delay,
                pt.outcome.profiled_flow_pct(),
                pt.outcome.hit_rate(),
                pt.outcome.noise_rate(),
                pt.outcome.moc_pct(),
                pt.outcome.counter_space,
            ));
        }
    }
    write_csv(
        &opts.out_dir,
        "fig2_hit_rates.csv",
        "benchmark,scheme,delay,profiled_flow_pct,hit_rate_pct,noise_rate_pct,moc_pct,counter_space",
        &rows,
    );

    for scheme in [SchemeKind::PathProfile, SchemeKind::Net] {
        println!("\nFigure 2 ({scheme}): hit rate in the practical range (profiled flow <= 10%)");
        println!(
            "{:<10} {:>8} {:>14} {:>10}",
            "Benchmark", "delay", "profiled%", "hit%"
        );
        for sr in swept.iter().filter(|s| s.scheme == scheme) {
            for pt in &sr.points {
                if pt.outcome.profiled_flow_pct() <= 10.0 {
                    println!(
                        "{:<10} {:>8} {:>13.2}% {:>9.2}%",
                        sr.name.to_string(),
                        pt.delay,
                        pt.outcome.profiled_flow_pct(),
                        pt.outcome.hit_rate()
                    );
                }
            }
        }
        println!("-- Average series ({scheme}) --");
        println!("{:>8} {:>14} {:>10}", "delay", "profiled%", "hit%");
        for (delay, prof, hit, _noise) in average_series(&swept, scheme) {
            println!("{delay:>8} {prof:>13.2}% {hit:>9.2}%");
        }
    }
    // The paper's panel (a)/(c) shape at a glance: average hit rate vs
    // profiled flow for both schemes.
    let net: Vec<(f64, f64)> = average_series(&swept, SchemeKind::Net)
        .into_iter()
        .map(|(_, p, h, _)| (p, h))
        .collect();
    let pp: Vec<(f64, f64)> = average_series(&swept, SchemeKind::PathProfile)
        .into_iter()
        .map(|(_, p, h, _)| (p, h))
        .collect();
    println!(
        "
{}",
        ascii_chart(
            "Figure 2 average series: N = NET, P = PathProfile",
            "profiled flow",
            "hit rate",
            &[('P', &pp), ('N', &net)],
            72,
            20,
        )
    );
}
