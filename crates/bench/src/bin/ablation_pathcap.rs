//! Ablation: the path length cap.
//!
//! Dynamo bounds trace length; the extractor mirrors that with a cap.
//! This bench shows path statistics and NET hit rates as the cap shrinks
//! from the default to aggressively short.
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin ablation_pathcap -- --scale small
//! ```

use hotpath_bench::{write_csv, Options, HOT_FRACTION};
use hotpath_core::{evaluate, NetPredictor};
use hotpath_profiles::{BackwardRule, PathExtractor, StreamingSink};
use hotpath_vm::Vm;
use hotpath_workloads::{build, WorkloadName};

fn main() {
    let opts = Options::from_env();
    println!(
        "{:<10} {:>6} {:>9} {:>9} {:>10}",
        "benchmark", "cap", "paths", "flow", "hit@50"
    );
    let mut rows = Vec::new();
    for name in [
        WorkloadName::Li,
        WorkloadName::Ijpeg,
        WorkloadName::Compress,
    ] {
        let w = build(name, opts.scale);
        for cap in [8u32, 32, 128, 1024] {
            let mut ex =
                PathExtractor::with_options(StreamingSink::new(), cap, BackwardRule::default());
            Vm::new(&w.program).run(&mut ex).expect("runs");
            let (sink, table) = ex.into_parts();
            let stream = sink.into_stream();
            let hot = stream.to_profile().hot_set(HOT_FRACTION);
            let o = evaluate(&stream, &table, &hot, &mut NetPredictor::new(50));
            println!(
                "{:<10} {:>6} {:>9} {:>9} {:>9.2}%",
                name.to_string(),
                cap,
                table.len(),
                stream.len(),
                o.hit_rate()
            );
            rows.push(format!(
                "{name},{cap},{},{},{:.3}",
                table.len(),
                stream.len(),
                o.hit_rate()
            ));
        }
    }
    write_csv(
        &opts.out_dir,
        "ablation_pathcap.csv",
        "benchmark,cap,paths,flow,net_hit_at_50",
        &rows,
    );
}
