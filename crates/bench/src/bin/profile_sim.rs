//! `profile_sim` — offline what-if harness for the fleet profile
//! store's merge policies.
//!
//! Replays a simulated fleet against each merge policy without a
//! server: for every workload, K publisher sessions run staggered
//! prefixes of the program (a fleet mid-flight: some sessions barely
//! started, some nearly done), export their warm state, and publish it
//! into one in-process [`ProfileStore`] per policy. The harness then
//! opens a fresh session pre-warmed from each aggregate and reports,
//! per workload and policy:
//!
//! * **fragments / counters** — aggregate size after the merge,
//! * **bytes** — the sealed profile blob a fetch would ship,
//! * **residual installs** — fragments the pre-warmed session still had
//!   to learn on its own (lower = the aggregate predicted more of the
//!   workload's hot paths),
//! * **bit-identity** — the pre-warmed run's final statistics must
//!   equal the cold run's (asserted, not just reported).
//!
//! Every store is also published in forward and reverse order and the
//! two encodings compared byte-for-byte, re-proving merge
//! order-independence on real profiles rather than synthetic ones.
//!
//! Everything is seeded and deterministic: two invocations with the
//! same arguments print the same table.
//!
//! Usage: `profile_sim [--scale smoke|small|full] [--sessions K]
//! [--seed S]`

use hotpath_serve::{
    MergePolicy, ProfileKey, ProfileStore, ProfileStoreConfig, Session, SessionConfig,
    SessionProfile,
};
use hotpath_vm::RunStats;
use hotpath_workloads::{Scale, WorkloadName, ALL_WORKLOADS};

struct Args {
    scale: Scale,
    sessions: u32,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Smoke,
        sessions: 6,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--scale" => {
                args.scale = match value("--scale").as_str() {
                    "smoke" => Scale::Smoke,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => panic!("unknown scale `{other}` (smoke|small|full)"),
                }
            }
            "--sessions" => {
                args.sessions = value("--sessions").parse().expect("--sessions: number");
                assert!(args.sessions > 0, "--sessions must be positive");
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed: number"),
            other => panic!(
                "unknown argument `{other}` (usage: [--scale smoke|small|full] \
                 [--sessions K] [--seed S])"
            ),
        }
    }
    args
}

/// The policies under comparison, in report order.
fn policies() -> [MergePolicy; 3] {
    [
        MergePolicy::Union,
        MergePolicy::FrequencyWeighted { min_percent: 50 },
        MergePolicy::ExponentialDecay { half_life: 4 },
    ]
}

/// Runs one cold session to completion; returns its final statistics.
fn cold_run(name: WorkloadName, scale: Scale) -> RunStats {
    let mut session = Session::open(0, 0, SessionConfig::exec(name, scale));
    let (done, stats) = session.run(None).expect("cold run");
    assert!(done, "{name}: cold run did not complete");
    stats
}

/// Simulates K publishers for one workload: session i executes a
/// `(i+1)/(K+1)` prefix of the program and exports its warm state. The
/// stagger is the interesting part — early publishers have seen few hot
/// paths, late ones most of them, so the policies genuinely disagree.
fn publisher_profiles(
    name: WorkloadName,
    scale: Scale,
    sessions: u32,
    total_blocks: u64,
) -> Vec<SessionProfile> {
    (0..sessions)
        .map(|i| {
            let config = SessionConfig::exec(name, scale);
            let mut session = Session::open(u64::from(i) + 1, 0, config.clone());
            let budget = total_blocks * (u64::from(i) + 1) / (u64::from(sessions) + 1);
            session.run(Some(budget.max(1))).expect("publisher run");
            SessionProfile {
                key: ProfileKey::of(&config),
                epoch: session.epoch(),
                warm: session.engine().export_warm_state(),
            }
        })
        .collect()
}

/// One policy's outcome for one workload.
struct PolicyOutcome {
    fragments: u64,
    counters: u64,
    bytes: usize,
    residual_installs: u64,
}

/// Publishes the profiles into a fresh store under `policy` (skipping
/// empty ones — publishers that learned nothing have nothing to merge),
/// proves order-independence by re-publishing in reverse into a second
/// store, then measures a pre-warmed session against the aggregate.
fn evaluate(
    name: WorkloadName,
    scale: Scale,
    seed: u64,
    policy: MergePolicy,
    profiles: &[SessionProfile],
    cold: &RunStats,
) -> Option<PolicyOutcome> {
    let config = ProfileStoreConfig {
        default_policy: policy,
        seed,
        ..ProfileStoreConfig::default()
    };
    let forward = ProfileStore::new(config.clone());
    let reverse = ProfileStore::new(config);
    let nonempty: Vec<&SessionProfile> = profiles.iter().filter(|p| !p.warm.is_empty()).collect();
    for profile in &nonempty {
        forward.publish(profile).expect("forward publish");
    }
    for profile in nonempty.iter().rev() {
        reverse.publish(profile).expect("reverse publish");
    }
    assert_eq!(
        forward.encode(),
        reverse.encode(),
        "{name}/{}: publish order changed the store bytes",
        policy.as_str()
    );

    let session_config = SessionConfig::exec(name, scale);
    let key = ProfileKey::of(&session_config);
    let aggregate = forward.fetch(&key)?;
    let blob = SessionProfile {
        key: aggregate.key,
        epoch: aggregate.epoch,
        warm: aggregate.warm.clone(),
    }
    .encode();

    let mut session = Session::open(100, 0, session_config);
    let (fragments, counters) = session.prewarm(&aggregate.warm).expect("prewarm");
    let (done, stats) = session.run(None).expect("prewarmed run");
    assert!(done, "{name}: pre-warmed run did not complete");
    assert_eq!(
        &stats,
        cold,
        "{name}/{}: pre-warmed run diverged from the cold run",
        policy.as_str()
    );
    let installs = session.status().installs;
    Some(PolicyOutcome {
        fragments,
        counters,
        bytes: blob.len(),
        residual_installs: installs.saturating_sub(fragments),
    })
}

fn main() {
    let args = parse_args();
    let scale_name = match args.scale {
        Scale::Smoke => "smoke",
        Scale::Small => "small",
        Scale::Full => "full",
    };
    println!(
        "=== profile_sim: {} publishers per workload, scale {}, seed {} ===",
        args.sessions, scale_name, args.seed
    );
    println!(
        "{:<12} {:<20} {:>10} {:>10} {:>10} {:>10}",
        "workload", "policy", "fragments", "counters", "bytes", "residual"
    );
    let mut checked = 0u32;
    for name in ALL_WORKLOADS {
        let cold = cold_run(name, args.scale);
        let profiles = publisher_profiles(name, args.scale, args.sessions, cold.blocks_executed);
        for policy in policies() {
            match evaluate(name, args.scale, args.seed, policy, &profiles, &cold) {
                Some(outcome) => {
                    println!(
                        "{:<12} {:<20} {:>10} {:>10} {:>10} {:>10}",
                        name.as_str(),
                        policy.as_str(),
                        outcome.fragments,
                        outcome.counters,
                        outcome.bytes,
                        outcome.residual_installs
                    );
                    checked += 1;
                }
                None => println!(
                    "{:<12} {:<20} {:>10}",
                    name.as_str(),
                    policy.as_str(),
                    "(no publisher learned anything)"
                ),
            }
        }
    }
    println!(
        "\nprofile_sim: {checked} workload/policy aggregates evaluated; every merge \
         order-independent, every pre-warmed run bit-identical to cold"
    );
}
