//! Ablation: the path-retirement model (the paper's §6.1/§8 future work).
//!
//! Evaluates NET with windowed hot sets and several idle-retirement
//! thresholds on the phased benchmarks: how much phase-induced noise does
//! retirement remove, and how many still-hot predictions does it evict?
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin ablation_retire -- --scale small
//! ```

use hotpath_bench::{record_workload, write_csv, Options};
use hotpath_core::{evaluate_phased, NetPredictor, RetirePolicy};
use hotpath_workloads::{build, WorkloadName};

fn main() {
    let opts = Options::from_env();
    println!(
        "{:<10} {:>12} {:>9} {:>10} {:>9} {:>13} {:>10}",
        "benchmark",
        "idle_window",
        "covered%",
        "precision%",
        "retired",
        "noise_avoided",
        "hits_lost"
    );
    let mut rows = Vec::new();
    for name in [
        WorkloadName::M88ksim, // three guest phases
        WorkloadName::Go,      // board drifts as stones are played
        WorkloadName::Deltablue,
    ] {
        let w = build(name, opts.scale);
        let run = record_workload(&w);
        let window = (run.flow() / 50).max(1_000);
        for idle in [window / 4, window, window * 4, u64::MAX] {
            let out = evaluate_phased(
                &run.stream,
                &run.table,
                &mut NetPredictor::new(50),
                window,
                0.001,
                RetirePolicy { idle_window: idle },
            );
            let label = if idle == u64::MAX {
                "never".to_string()
            } else {
                idle.to_string()
            };
            println!(
                "{:<10} {:>12} {:>8.2}% {:>9.2}% {:>9} {:>13} {:>10}",
                name.to_string(),
                label,
                out.covered_flow_pct(),
                out.coverage_precision(),
                out.retirements,
                out.noise_avoided,
                out.hits_lost
            );
            rows.push(format!(
                "{name},{label},{:.3},{:.3},{},{},{}",
                out.covered_flow_pct(),
                out.coverage_precision(),
                out.retirements,
                out.noise_avoided,
                out.hits_lost
            ));
        }
    }
    write_csv(
        &opts.out_dir,
        "ablation_retire.csv",
        "benchmark,idle_window,covered_pct,precision_pct,retirements,noise_avoided,hits_lost",
        &rows,
    );
}
