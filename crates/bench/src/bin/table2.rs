//! Regenerates **Table 2**: number of dynamic paths vs. unique path heads
//! per benchmark — the counter-space comparison between path-profile based
//! prediction (one counter per path) and NET (one counter per head).
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin table2 -- --scale full
//! ```

use hotpath_bench::{record_suite_parallel, write_csv, Options};

fn main() {
    let opts = Options::from_env();
    let runs = record_suite_parallel(opts.scale);

    println!("\nTable 2. Number of paths and unique path heads");
    println!(
        "{:<10} {:>9} {:>20}",
        "Benchmark", "#Paths", "#Unique Path Heads"
    );
    let mut rows = Vec::new();
    for run in &runs {
        println!(
            "{:<10} {:>9} {:>20}",
            run.name.to_string(),
            run.table.len(),
            run.table.unique_heads()
        );
        rows.push(format!(
            "{},{},{}",
            run.name,
            run.table.len(),
            run.table.unique_heads()
        ));
    }
    write_csv(
        &opts.out_dir,
        "table2.csv",
        "benchmark,paths,unique_path_heads",
        &rows,
    );
}
