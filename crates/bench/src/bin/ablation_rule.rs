//! Ablation: the backward-transfer rule (§3 interpretation).
//!
//! Compares path statistics and NET prediction quality when only branch
//! instructions end paths (`BranchesOnly`) vs. when calls and returns do
//! too (`AllTransfers`, the default and the literal reading of the paper).
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin ablation_rule -- --scale small
//! ```

use hotpath_bench::{write_csv, Options, HOT_FRACTION};
use hotpath_core::{evaluate, NetPredictor};
use hotpath_profiles::{BackwardRule, PathExtractor, StreamingSink, DEFAULT_PATH_CAP};
use hotpath_vm::Vm;
use hotpath_workloads::{build, ALL_WORKLOADS};

fn main() {
    let opts = Options::from_env();
    println!(
        "{:<10} {:<13} {:>8} {:>7} {:>10} {:>9}",
        "benchmark", "rule", "paths", "heads", "hit@50", "noise@50"
    );
    let mut rows = Vec::new();
    for &name in &ALL_WORKLOADS {
        let w = build(name, opts.scale);
        for (label, rule) in [
            ("all-transfers", BackwardRule::AllTransfers),
            ("branches-only", BackwardRule::BranchesOnly),
        ] {
            let mut ex = PathExtractor::with_options(StreamingSink::new(), DEFAULT_PATH_CAP, rule);
            Vm::new(&w.program).run(&mut ex).expect("runs");
            let (sink, table) = ex.into_parts();
            let stream = sink.into_stream();
            let hot = stream.to_profile().hot_set(HOT_FRACTION);
            let o = evaluate(&stream, &table, &hot, &mut NetPredictor::new(50));
            println!(
                "{:<10} {:<13} {:>8} {:>7} {:>9.2}% {:>8.2}%",
                name.to_string(),
                label,
                table.len(),
                table.unique_heads(),
                o.hit_rate(),
                o.noise_rate()
            );
            rows.push(format!(
                "{name},{label},{},{},{:.3},{:.3}",
                table.len(),
                table.unique_heads(),
                o.hit_rate(),
                o.noise_rate()
            ));
        }
    }
    write_csv(
        &opts.out_dir,
        "ablation_rule.csv",
        "benchmark,rule,paths,heads,net_hit_at_50,net_noise_at_50",
        &rows,
    );
}
