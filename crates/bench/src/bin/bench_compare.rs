//! `bench_compare` — the CI regression gate over pipeline snapshots.
//!
//! Diffs two snapshot files and exits nonzero when the second regresses:
//!
//! * two `BENCH_perf.json` documents (or the same document twice with
//!   different `--baseline-label`/`--current-label`): any mode whose
//!   blocks/sec drops more than the tolerance fails the gate;
//! * two `telemetry.json` summaries: any differing event count fails
//!   (events are deterministic by construction; `timings` are excluded).
//!
//! ```text
//! bench_compare BASELINE.json CURRENT.json [--tolerance 0.10] [--relative]
//!               [--baseline-label L] [--current-label L]
//! ```
//!
//! `--relative` normalizes each perf run by its own `native` rate before
//! gating, cancelling machine speed — that is what CI uses, because its
//! baseline numbers were recorded on a different host. The tolerance
//! defaults to the `PERF_GATE_TOLERANCE` environment variable, then 0.10.
//!
//! Exit codes: 0 pass, 1 regression found, 2 usage or parse error.

use std::fs;
use std::process::ExitCode;

use hotpath_bench::compare::{
    compare_perf, compare_telemetry, detect_kind, parse_perf_runs, select_run, CompareOptions,
    DocKind, DEFAULT_TOLERANCE,
};

struct Args {
    baseline: String,
    current: String,
    options: CompareOptions,
    baseline_label: Option<String>,
    current_label: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut tolerance = match std::env::var("PERF_GATE_TOLERANCE") {
        Ok(v) => v
            .parse::<f64>()
            .map_err(|_| format!("PERF_GATE_TOLERANCE=`{v}` is not a number"))?,
        Err(_) => DEFAULT_TOLERANCE,
    };
    let mut relative = false;
    let mut baseline_label = None;
    let mut current_label = None;
    let mut files = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--tolerance" => {
                let v = value("--tolerance")?;
                tolerance = v
                    .parse()
                    .map_err(|_| format!("--tolerance `{v}` is not a number"))?;
            }
            "--relative" => relative = true,
            "--baseline-label" => baseline_label = Some(value("--baseline-label")?),
            "--current-label" => current_label = Some(value("--current-label")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => files.push(file.to_string()),
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} must be in [0, 1)"));
    }
    let [baseline, current]: [String; 2] = files
        .try_into()
        .map_err(|_| "expected exactly two snapshot files".to_string())?;
    Ok(Args {
        baseline,
        current,
        options: CompareOptions {
            tolerance,
            relative,
        },
        baseline_label,
        current_label,
    })
}

fn run(args: &Args) -> Result<bool, String> {
    let read =
        |path: &str| fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let base_text = read(&args.baseline)?;
    let cur_text = read(&args.current)?;
    let kind = detect_kind(&base_text).map_err(|e| format!("{}: {e}", args.baseline))?;
    let cur_kind = detect_kind(&cur_text).map_err(|e| format!("{}: {e}", args.current))?;
    if kind != cur_kind {
        return Err(format!(
            "cannot compare a {kind:?} document against a {cur_kind:?} document"
        ));
    }
    match kind {
        DocKind::Perf => {
            let base_runs =
                parse_perf_runs(&base_text).map_err(|e| format!("{}: {e}", args.baseline))?;
            let cur_runs =
                parse_perf_runs(&cur_text).map_err(|e| format!("{}: {e}", args.current))?;
            let base = select_run(&base_runs, args.baseline_label.as_deref())
                .map_err(|e| format!("{}: {e}", args.baseline))?;
            let cur = select_run(&cur_runs, args.current_label.as_deref())
                .map_err(|e| format!("{}: {e}", args.current))?;
            let report = compare_perf(base, cur, args.options)?;
            print!("{}", report.render());
            Ok(report.passed())
        }
        DocKind::Telemetry => {
            let diff = compare_telemetry(&base_text, &cur_text)?;
            print!("{}", diff.render());
            Ok(diff.passed())
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!(
                "bench_compare: {e}\nusage: bench_compare BASELINE.json CURRENT.json \
                 [--tolerance F] [--relative] [--baseline-label L] [--current-label L]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("bench_compare: regression gate FAILED");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::from(2)
        }
    }
}
