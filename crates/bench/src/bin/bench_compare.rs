//! `bench_compare` — the CI regression gate over pipeline snapshots.
//!
//! Three modes:
//!
//! * **Pairwise diff** (two files): any perf mode whose blocks/sec drops
//!   more than the tolerance, or any differing telemetry event count,
//!   fails the gate;
//! * **`--trend FILE`**: scans every committed run in one perf document
//!   in order and reports each mode's cumulative native-relative drift
//!   (first run vs last). Advisory — slow bleed the pairwise gate cannot
//!   see draws a WARN but exits 0;
//! * **`--curve PREFIX FILE`**: gates a committed `loadgen --sweep`
//!   curve: the `serve-aggregate` rate of `PREFIX-nN` at the largest N
//!   must hold at least `--curve-floor` (default 0.5) of the smallest-N
//!   rate;
//! * **`--warmstart LABEL FILE`**: gates a committed `loadgen
//!   --warm-start` run: every workload's pre-warmed
//!   blocks-to-first-trace must sit strictly below its cold number, and
//!   `serve-prewarmed` throughput must hold within the tolerance of
//!   `serve-cold` (`--relative` normalizes both by the run's own
//!   `native` rate for cross-host portability);
//! * **`--chaos LABEL FILE`**: gates a committed `loadgen --chaos` run:
//!   zero leaked sessions, zero divergent sessions, every expected
//!   session completed, and at least one injected fault visibly
//!   absorbed (retry, reconnect, shard restart, or quarantined
//!   publish);
//! * **`--alloc LABEL FILE [CURRENT_FILE]`**: gates the serve-path
//!   allocation profile recorded by a `selfprof-alloc` loadgen build:
//!   heap bytes and allocator calls per interpreted block in the
//!   current run must not exceed the run labelled `LABEL` by more than
//!   the tolerance. With one file the run gates against itself, which
//!   validates that the committed section exists and is well-formed;
//!   with two, `--current-label` picks the fresh run (default `LABEL`).
//!
//! ```text
//! bench_compare BASELINE.json CURRENT.json [--tolerance 0.10] [--relative]
//!               [--baseline-label L] [--current-label L]
//! bench_compare --trend FILE [--tolerance 0.10]
//! bench_compare --curve PREFIX FILE [--curve-floor 0.5]
//! bench_compare --warmstart LABEL FILE [--tolerance 0.10] [--relative]
//! bench_compare --chaos LABEL FILE
//! bench_compare --alloc LABEL FILE [CURRENT_FILE] [--tolerance 0.10]
//!               [--current-label L]
//! ```
//!
//! `--relative` normalizes each perf run by its own `native` rate before
//! gating, cancelling machine speed — that is what CI uses, because its
//! baseline numbers were recorded on a different host. The tolerance
//! defaults to the `PERF_GATE_TOLERANCE` environment variable, then 0.10.
//!
//! Exit codes: 0 pass (trend warnings included — they are advisory),
//! 1 regression found (pairwise) or curve below floor, 2 usage or parse
//! error.

use std::fs;
use std::process::ExitCode;

use hotpath_bench::compare::{
    alloc_gate, chaos_gate, compare_perf, compare_telemetry, detect_kind, parse_perf_runs,
    perf_trend, select_run, sweep_curve, warm_start_gate, CompareOptions, DocKind,
    DEFAULT_CURVE_FLOOR, DEFAULT_TOLERANCE,
};

const USAGE: &str = "usage: bench_compare BASELINE.json CURRENT.json [--tolerance F] [--relative]
                     [--baseline-label L] [--current-label L]
       bench_compare --trend FILE [--tolerance F]
       bench_compare --curve PREFIX FILE [--curve-floor F]
       bench_compare --warmstart LABEL FILE [--tolerance F] [--relative]
       bench_compare --chaos LABEL FILE
       bench_compare --alloc LABEL FILE [CURRENT_FILE] [--tolerance F]
                     [--current-label L]

modes:
  two files        pairwise gate: perf modes beyond the tolerance or any
                   differing telemetry event count fail
  --trend FILE     cumulative native-relative drift across every run in
                   one perf document; WARNs are advisory (exit 0)
  --curve PREFIX   sweep-curve gate over runs labelled PREFIX-nN: the
                   serve-aggregate rate at the largest N must hold
                   --curve-floor (default 0.5) of the smallest-N rate
  --warmstart L    warm-start gate over the run labelled L: pre-warmed
                   blocks-to-first-trace strictly below cold for every
                   workload, serve-prewarmed throughput within the
                   tolerance of serve-cold
  --chaos L        chaos gate over the run labelled L: zero leaked or
                   divergent sessions, every expected session completed,
                   and at least one injected fault visibly absorbed
  --alloc L        allocation gate against the run labelled L: serve-path
                   heap bytes and allocator calls per block must not grow
                   beyond the tolerance (one file self-validates the
                   committed profile; a second file supplies the fresh
                   run, picked by --current-label, default L)

exit codes:
  0  gate passed (including --trend runs that only warn)
  1  regression found / curve below floor
  2  usage or parse error";

enum Mode {
    Diff {
        baseline: String,
        current: String,
        baseline_label: Option<String>,
        current_label: Option<String>,
        options: CompareOptions,
    },
    Trend {
        file: String,
        tolerance: f64,
    },
    Curve {
        file: String,
        prefix: String,
        floor: f64,
    },
    WarmStart {
        file: String,
        label: String,
        options: CompareOptions,
    },
    Chaos {
        file: String,
        label: String,
    },
    Alloc {
        file: String,
        current_file: Option<String>,
        label: String,
        current_label: Option<String>,
        tolerance: f64,
    },
}

fn parse_args() -> Result<Mode, String> {
    let mut tolerance = match std::env::var("PERF_GATE_TOLERANCE") {
        Ok(v) => v
            .parse::<f64>()
            .map_err(|_| format!("PERF_GATE_TOLERANCE=`{v}` is not a number"))?,
        Err(_) => DEFAULT_TOLERANCE,
    };
    let mut relative = false;
    let mut baseline_label = None;
    let mut current_label = None;
    let mut trend = false;
    let mut curve: Option<String> = None;
    let mut warmstart: Option<String> = None;
    let mut chaos: Option<String> = None;
    let mut alloc: Option<String> = None;
    let mut floor = DEFAULT_CURVE_FLOOR;
    let mut files = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--tolerance" => {
                let v = value("--tolerance")?;
                tolerance = v
                    .parse()
                    .map_err(|_| format!("--tolerance `{v}` is not a number"))?;
            }
            "--relative" => relative = true,
            "--baseline-label" => baseline_label = Some(value("--baseline-label")?),
            "--current-label" => current_label = Some(value("--current-label")?),
            "--trend" => trend = true,
            "--curve" => curve = Some(value("--curve")?),
            "--warmstart" => warmstart = Some(value("--warmstart")?),
            "--chaos" => chaos = Some(value("--chaos")?),
            "--alloc" => alloc = Some(value("--alloc")?),
            "--curve-floor" => {
                let v = value("--curve-floor")?;
                floor = v
                    .parse()
                    .map_err(|_| format!("--curve-floor `{v}` is not a number"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => files.push(file.to_string()),
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} must be in [0, 1)"));
    }
    if [
        trend,
        curve.is_some(),
        warmstart.is_some(),
        chaos.is_some(),
        alloc.is_some(),
    ]
    .iter()
    .filter(|&&set| set)
    .count()
        > 1
    {
        return Err(
            "--trend, --curve, --warmstart, --chaos, and --alloc are mutually exclusive".into(),
        );
    }
    if trend {
        let [file]: [String; 1] = files
            .try_into()
            .map_err(|_| "--trend takes exactly one snapshot file".to_string())?;
        return Ok(Mode::Trend { file, tolerance });
    }
    if let Some(prefix) = curve {
        let [file]: [String; 1] = files
            .try_into()
            .map_err(|_| "--curve takes exactly one snapshot file".to_string())?;
        return Ok(Mode::Curve {
            file,
            prefix,
            floor,
        });
    }
    if let Some(label) = warmstart {
        let [file]: [String; 1] = files
            .try_into()
            .map_err(|_| "--warmstart takes exactly one snapshot file".to_string())?;
        return Ok(Mode::WarmStart {
            file,
            label,
            options: CompareOptions {
                tolerance,
                relative,
            },
        });
    }
    if let Some(label) = chaos {
        let [file]: [String; 1] = files
            .try_into()
            .map_err(|_| "--chaos takes exactly one snapshot file".to_string())?;
        return Ok(Mode::Chaos { file, label });
    }
    if let Some(label) = alloc {
        let (file, current_file) = match files.len() {
            1 => (files.remove(0), None),
            2 => {
                let current = files.pop();
                (files.remove(0), current)
            }
            n => return Err(format!("--alloc takes one or two snapshot files, got {n}")),
        };
        return Ok(Mode::Alloc {
            file,
            current_file,
            label,
            current_label,
            tolerance,
        });
    }
    let [baseline, current]: [String; 2] = files
        .try_into()
        .map_err(|_| "expected exactly two snapshot files".to_string())?;
    Ok(Mode::Diff {
        baseline,
        current,
        baseline_label,
        current_label,
        options: CompareOptions {
            tolerance,
            relative,
        },
    })
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn read_perf_runs(path: &str) -> Result<Vec<hotpath_bench::compare::PerfRun>, String> {
    let text = read(path)?;
    parse_perf_runs(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(mode: &Mode) -> Result<bool, String> {
    match mode {
        Mode::Trend { file, tolerance } => {
            let runs = read_perf_runs(file)?;
            let report = perf_trend(&runs, *tolerance)?;
            print!("{}", report.render());
            let warnings = report.warnings().count();
            if warnings > 0 {
                eprintln!("bench_compare: {warnings} mode(s) drifting (advisory — not failing)");
            }
            Ok(true)
        }
        Mode::Curve {
            file,
            prefix,
            floor,
        } => {
            let runs = read_perf_runs(file)?;
            let report = sweep_curve(&runs, prefix, *floor)?;
            print!("{}", report.render());
            Ok(report.passed)
        }
        Mode::WarmStart {
            file,
            label,
            options,
        } => {
            let runs = read_perf_runs(file)?;
            let run = select_run(&runs, Some(label)).map_err(|e| format!("{file}: {e}"))?;
            let report = warm_start_gate(run, *options)?;
            print!("{}", report.render());
            Ok(report.passed())
        }
        Mode::Chaos { file, label } => {
            let runs = read_perf_runs(file)?;
            let run = select_run(&runs, Some(label)).map_err(|e| format!("{file}: {e}"))?;
            let report = chaos_gate(run)?;
            print!("{}", report.render());
            Ok(report.passed())
        }
        Mode::Alloc {
            file,
            current_file,
            label,
            current_label,
            tolerance,
        } => {
            let base_runs = read_perf_runs(file)?;
            let base = select_run(&base_runs, Some(label)).map_err(|e| format!("{file}: {e}"))?;
            let report = match current_file {
                Some(cur_path) => {
                    let cur_runs = read_perf_runs(cur_path)?;
                    let want = current_label.as_deref().unwrap_or(label);
                    let cur = select_run(&cur_runs, Some(want))
                        .map_err(|e| format!("{cur_path}: {e}"))?;
                    alloc_gate(base, cur, *tolerance)?
                }
                // One file: gate the committed run against itself, which
                // validates the section's presence and shape.
                None => alloc_gate(base, base, *tolerance)?,
            };
            print!("{}", report.render());
            Ok(report.passed())
        }
        Mode::Diff {
            baseline,
            current,
            baseline_label,
            current_label,
            options,
        } => {
            let base_text = read(baseline)?;
            let cur_text = read(current)?;
            let kind = detect_kind(&base_text).map_err(|e| format!("{baseline}: {e}"))?;
            let cur_kind = detect_kind(&cur_text).map_err(|e| format!("{current}: {e}"))?;
            if kind != cur_kind {
                return Err(format!(
                    "cannot compare a {kind:?} document against a {cur_kind:?} document"
                ));
            }
            match kind {
                DocKind::Perf => {
                    let base_runs =
                        parse_perf_runs(&base_text).map_err(|e| format!("{baseline}: {e}"))?;
                    let cur_runs =
                        parse_perf_runs(&cur_text).map_err(|e| format!("{current}: {e}"))?;
                    let base = select_run(&base_runs, baseline_label.as_deref())
                        .map_err(|e| format!("{baseline}: {e}"))?;
                    let cur = select_run(&cur_runs, current_label.as_deref())
                        .map_err(|e| format!("{current}: {e}"))?;
                    let report = compare_perf(base, cur, *options)?;
                    print!("{}", report.render());
                    Ok(report.passed())
                }
                DocKind::Telemetry => {
                    let diff = compare_telemetry(&base_text, &cur_text)?;
                    print!("{}", diff.render());
                    Ok(diff.passed())
                }
            }
        }
    }
}

fn main() -> ExitCode {
    let mode = match parse_args() {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("bench_compare: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&mode) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("bench_compare: regression gate FAILED");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::from(2)
        }
    }
}
