//! Ablation: the Boa-style branch-profile trace selector (paper §7).
//!
//! For each benchmark, runs NET's path selection and Boa's
//! argmax-successor trace construction side by side at τ = 50 and
//! measures Boa's *phantom rate*: the fraction of constructed traces
//! whose block sequence never executed as a real path — the paper's
//! "paths that, as a whole, never execute" critique — plus the counter
//! space each scheme needs.
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin ablation_boa -- --scale small
//! ```

use std::collections::HashSet;

use hotpath_bench::{write_csv, Options};
use hotpath_core::BoaSelector;
use hotpath_profiles::SequenceRecorder;
use hotpath_vm::{Tee, Vm};
use hotpath_workloads::{build, ALL_WORKLOADS};

fn main() {
    let opts = Options::from_env();
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "traces", "phantoms", "phantom%", "boa_counters", "net_counters"
    );
    let mut rows = Vec::new();
    for &name in &ALL_WORKLOADS {
        let w = build(name, opts.scale);
        let mut boa = BoaSelector::new(50);
        let mut seqs = SequenceRecorder::new();
        let mut tee = Tee(&mut boa, &mut seqs);
        Vm::new(&w.program).run(&mut tee).expect("runs");
        let (_stream, table, sequences) = seqs.into_parts();

        // A constructed trace is "real" if some executed path contains it
        // as a prefix (generous to Boa; exact match would be stricter).
        let phantoms = boa
            .traces()
            .iter()
            .filter(|t| {
                !sequences
                    .iter()
                    .any(|p| p.len() >= t.len() && &p[..t.len()] == t.as_slice())
            })
            .count();
        let total = boa.traces().len().max(1);
        let net_counters: usize = table
            .iter()
            .map(|(_, info)| info.head.as_u32())
            .collect::<HashSet<_>>()
            .len();
        let pct = phantoms as f64 / total as f64 * 100.0;
        println!(
            "{:<10} {:>8} {:>10} {:>9.1}% {:>12} {:>12}",
            name.to_string(),
            boa.traces().len(),
            phantoms,
            pct,
            boa.counter_space(),
            net_counters
        );
        rows.push(format!(
            "{name},{},{phantoms},{pct:.2},{},{net_counters}",
            boa.traces().len(),
            boa.counter_space()
        ));
    }
    write_csv(
        &opts.out_dir,
        "ablation_boa.csv",
        "benchmark,traces,phantom_traces,phantom_pct,boa_edge_counters,net_head_counters",
        &rows,
    );
    println!(
        "\nBoa profiles every branch (edge counters) and still constructs\n\
         phantom traces by ignoring branch correlation; NET profiles only\n\
         path heads and predicts only paths that actually executed."
    );
}
