//! Ablation: cost-model robustness for the Figure 5 conclusion.
//!
//! Sweeps the two dominant constants — interpretation slowdown and cached
//! trace speed — and reports the NET-vs-PathProfile speedup gap on a
//! trace-friendly benchmark. The claim under test: NET ≥ PathProfile
//! across the plausible constant range, not just at the defaults.
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin ablation_cost -- --scale small
//! ```

use hotpath_bench::{write_csv, Options};
use hotpath_dynamo::{run_dynamo, run_native, CostModel, DynamoConfig, Scheme};
use hotpath_workloads::{build, WorkloadName};

fn main() {
    let opts = Options::from_env();
    let w = build(WorkloadName::Deltablue, opts.scale);
    let native = run_native(&w.program).expect("native");

    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>8}",
        "interp", "trace", "NET50", "PP50", "gap"
    );
    let mut rows = Vec::new();
    for interp in [8.0f64, 12.0, 20.0] {
        for trace in [0.7f64, 0.8, 0.9] {
            let mut speedups = [0.0f64; 2];
            for (i, scheme) in [Scheme::Net, Scheme::PathProfile].into_iter().enumerate() {
                let mut cfg = DynamoConfig::new(scheme, 50);
                cfg.cost = CostModel {
                    interp_per_inst: interp,
                    trace_per_inst: trace,
                    ..CostModel::default()
                };
                let out = run_dynamo(&w.program, &cfg).expect("dynamo");
                speedups[i] = out.speedup_percent(native);
            }
            let gap = speedups[0] - speedups[1];
            println!(
                "{:>8.1} {:>8.2} {:>+9.1}% {:>+9.1}% {:>+7.1}%",
                interp, trace, speedups[0], speedups[1], gap
            );
            rows.push(format!(
                "{interp},{trace},{:.3},{:.3},{gap:.3}",
                speedups[0], speedups[1]
            ));
        }
    }
    write_csv(
        &opts.out_dir,
        "ablation_cost.csv",
        "interp_per_inst,trace_per_inst,net50_speedup,pp50_speedup,gap",
        &rows,
    );
}
