//! Ablation: the §6.1 phase-flush heuristic on a phased synthetic
//! workload.
//!
//! A workload with distinct phases accumulates dead fragments; the spike
//! detector flushes near phase boundaries. This bench reports live
//! fragments, flush counts, and speedup with the heuristic off/on at
//! several window sizes.
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin ablation_flush -- --scale small
//! ```

use hotpath_bench::{write_csv, Options};
use hotpath_dynamo::{run_dynamo, run_native, DynamoConfig, FlushPolicy, Scheme};
use hotpath_workloads::synthetic::{build, SyntheticSpec};
use hotpath_workloads::Scale;

/// Three-phase program: each phase exercises a different branch bias, so
/// each phase's hot paths differ.
fn phased(scale: Scale) -> hotpath_ir::Program {
    // Concatenate phases by seeding bias shifts into the data stream: a
    // single loop whose decision words flip distribution thirds of the way
    // through. SyntheticSpec draws i.i.d. words, so emulate phases by
    // running three programs... instead, use one long loop and rely on the
    // workload's seed: simplest honest phased program is three sequential
    // synthetic loops, which `hotpath_workloads::synthetic` does not
    // provide — so build one here from three specs.
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    let trips = scale.pick(3_000, 120_000, 1_000_000) as i64;
    let _ = build(&SyntheticSpec::default()); // keep the module exercised
    let mut fb = FunctionBuilder::new("main");
    let acc = fb.imm(0);
    for phase in 0..3i64 {
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let arm_a = fb.new_block();
        let arm_b = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trips);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let m = fb.reg();
        // Phase k biases the branch differently.
        fb.and_imm(m, i, 3);
        let pick = fb.cmp_imm(CmpOp::Eq, m, phase);
        fb.branch(pick, arm_a, arm_b);
        fb.switch_to(arm_a);
        fb.add_imm(acc, acc, phase + 1);
        fb.jump(latch);
        fb.switch_to(arm_b);
        fb.add_imm(acc, acc, 1);
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
    }
    fb.halt();
    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).expect("builds");
    pb.finish().expect("validates")
}

fn main() {
    let opts = Options::from_env();
    let program = phased(opts.scale);
    let native = run_native(&program).expect("native");

    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>8}",
        "policy", "speedup", "live", "flushes", "spikes"
    );
    let mut rows = Vec::new();
    let policies: Vec<(String, FlushPolicy)> =
        std::iter::once(("never".to_string(), FlushPolicy::Never))
            .chain([2_000u64, 10_000, 50_000].into_iter().map(|window| {
                (
                    format!("spike_w{window}"),
                    FlushPolicy::OnSpike {
                        window,
                        factor: 6.0,
                        min_predictions: 2,
                    },
                )
            }))
            .collect();
    for (label, policy) in policies {
        let mut cfg = DynamoConfig::new(Scheme::Net, 50);
        cfg.flush = policy;
        let out = run_dynamo(&program, &cfg).expect("dynamo");
        println!(
            "{:<22} {:>+8.1}% {:>8} {:>8} {:>8}",
            label,
            out.speedup_percent(native),
            out.fragments_live,
            out.flushes,
            out.spike_flushes
        );
        rows.push(format!(
            "{label},{:.3},{},{},{}",
            out.speedup_percent(native),
            out.fragments_live,
            out.flushes,
            out.spike_flushes
        ));
    }
    write_csv(
        &opts.out_dir,
        "ablation_flush.csv",
        "policy,speedup_pct,fragments_live,flushes,spike_flushes",
        &rows,
    );
}
