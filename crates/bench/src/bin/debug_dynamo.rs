//! Diagnostic: cycle breakdown of one Dynamo run per workload (not a
//! paper figure; kept for cost-model calibration).
use hotpath_bench::Options;
use hotpath_dynamo::{run_dynamo, run_native, DynamoConfig, Scheme};
use hotpath_workloads::{build, ALL_WORKLOADS};

fn main() {
    let opts = Options::from_env();
    for name in ALL_WORKLOADS.iter().filter(|w| w.in_dynamo_figure()) {
        let w = build(*name, opts.scale);
        let native = run_native(&w.program).unwrap();
        let out = run_dynamo(&w.program, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        let c = out.cycles;
        println!(
            "{:<10} native={:>12.0} total={:>12.0} speedup={:+.1}% cached_frac={:.3} frags={} flushes={} bail={}",
            name.to_string(), native, c.total(), out.speedup_percent(native),
            out.cached_block_fraction, out.fragments_installed, out.flushes, out.bailed_out
        );
        println!(
            "           interp={:>12.0} trace={:>12.0} prof={:>10.0} build={:>10.0} trans={:>10.0}",
            c.interp, c.trace, c.profiling, c.build, c.transitions
        );
    }
}
