//! Diagnostic: detailed breakdown for one workload (args: NAME SCALE).
use hotpath_dynamo::{run_dynamo, run_native, DynamoConfig, Scheme};
use hotpath_workloads::{build, Scale};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "li".into()).parse().unwrap();
    let scale = match args.next().as_deref() {
        Some("full") => Scale::Full,
        Some("smoke") => Scale::Smoke,
        _ => Scale::Small,
    };
    let w = build(name, scale);
    let native = run_native(&w.program).unwrap();
    for (scheme, delay) in [
        (Scheme::Net, 10u64),
        (Scheme::Net, 50),
        (Scheme::Net, 100),
        (Scheme::PathProfile, 50),
    ] {
        let out = run_dynamo(&w.program, &DynamoConfig::new(scheme, delay)).unwrap();
        let c = out.cycles;
        println!(
            "{name} {scheme} tau={delay}: speedup={:+.1}% cached={:.3} frags={} flushes={} bail={} paths={}",
            out.speedup_percent(native),
            out.cached_block_fraction,
            out.fragments_installed,
            out.flushes,
            out.bailed_out,
            out.paths_completed
        );
        println!(
            "   interp={:.0} trace={:.0} native={:.0} prof={:.0} build={:.0} trans={:.0}",
            c.interp, c.trace, c.native, c.profiling, c.build, c.transitions
        );
    }
}
