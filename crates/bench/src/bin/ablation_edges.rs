//! Ablation: the edge-vs-path "showdown" (paper §7, reference [6]).
//!
//! For each benchmark, rank true paths by their edge-profile estimate and
//! measure how much of the 0.1% hot path profile the edge-derived top set
//! recovers — reproducing Ball/Mataga/Sagiv's observation that cheap edge
//! profiles capture most of the hot path profile offline (which is the
//! paper's springboard: if even offline paths barely beat edges, online
//! prediction surely doesn't need full path profiling).
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin ablation_edges -- --scale small
//! ```

use hotpath_bench::{write_csv, Options, HOT_FRACTION};
use hotpath_profiles::{showdown, EdgeProfiler, SequenceRecorder};
use hotpath_vm::{Tee, Vm};
use hotpath_workloads::{build, ALL_WORKLOADS};

fn main() {
    let opts = Options::from_env();
    println!(
        "{:<10} {:>7} {:>9} {:>12} {:>12} {:>12}",
        "benchmark", "hot", "overlap", "hot_flow%", "edge_ctrs", "path_ctrs"
    );
    let mut rows = Vec::new();
    for &name in &ALL_WORKLOADS {
        let w = build(name, opts.scale);
        let mut edges = EdgeProfiler::new();
        let mut seqs = SequenceRecorder::new();
        let mut tee = Tee(&mut edges, &mut seqs);
        Vm::new(&w.program).run(&mut tee).expect("runs");
        let (stream, table, sequences) = seqs.into_parts();
        let profile = stream.to_profile();
        let hot = profile.hot_set(HOT_FRACTION);
        let r = showdown(&edges, &profile, &table, &sequences, &hot);
        println!(
            "{:<10} {:>7} {:>9} {:>11.1}% {:>12} {:>12}",
            name.to_string(),
            r.hot_paths,
            r.overlap,
            r.hot_flow_captured_pct,
            r.edge_counters,
            r.path_counters
        );
        rows.push(format!(
            "{name},{},{},{:.2},{},{}",
            r.hot_paths, r.overlap, r.hot_flow_captured_pct, r.edge_counters, r.path_counters
        ));
    }
    write_csv(
        &opts.out_dir,
        "ablation_edges.csv",
        "benchmark,hot_paths,overlap,hot_flow_captured_pct,edge_counters,path_counters",
        &rows,
    );
}
