//! Regenerates every table and figure in one invocation, recording each
//! workload once and reusing the streams (Tables 1–2, Figures 2–4), then
//! running the Dynamo matrix (Figure 5).
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin all -- --scale full
//! ```

use hotpath_bench::{
    average_series, record_suite_parallel, sweep_suite, write_csv, write_telemetry, Options,
};
use hotpath_core::SchemeKind;
use hotpath_dynamo::{run_dynamo, run_dynamo_linked, run_native, DynamoConfig, Scheme};
use hotpath_telemetry as telemetry;
use hotpath_workloads::{build, ALL_WORKLOADS};

fn main() {
    let opts = Options::from_env();
    // All run telemetry funnels into one summary, written alongside the
    // CSVs as telemetry.json. Recording runs on worker threads (where no
    // recorder is installed), so the measured times are re-emitted as
    // Timing events below; the Figure 5 Dynamo runs execute on this thread
    // and stream their engine events straight into the summary.
    let (recorder, summary) = telemetry::SummaryRecorder::new();
    let _guard = telemetry::install(Box::new(recorder));

    let wall = std::time::Instant::now();
    let runs = record_suite_parallel(opts.scale);
    let wall = wall.elapsed().as_secs_f64();

    for run in &runs {
        telemetry::emit!(telemetry::Event::Timing {
            label: &format!("record/{}", run.name),
            secs: run.record_secs,
        });
    }
    telemetry::emit!(telemetry::Event::Timing {
        label: "record/suite_wall",
        secs: wall,
    });

    // Per-workload record times: the parallel recorder's wall clock is the
    // slowest workload, the serial sum is what it replaced.
    println!("== Recording times ==");
    let timed = summary.snapshot();
    if timed.timings().next().is_none() {
        // Telemetry compiled out (--no-default-features): report directly.
        for run in &runs {
            println!(
                "record/{:<17} {:>6.2}s",
                run.name.to_string(),
                run.record_secs
            );
        }
    } else {
        for (label, secs) in timed.timings() {
            println!("{label:<24} {secs:>6.2}s");
        }
    }
    let serial_sum: f64 = runs.iter().map(|r| r.record_secs).sum();
    println!(
        "suite wall {wall:.2}s (serial sum {serial_sum:.2}s, {:.1}x)",
        serial_sum / wall.max(1e-9)
    );

    // ---- Table 1 -------------------------------------------------------
    println!("\n== Table 1: benchmark set ==");
    let mut rows = Vec::new();
    for run in &runs {
        println!(
            "{:<10} paths={:<7} flow={:<11} hot_paths={:<5} hot_flow={:.1}%",
            run.name.to_string(),
            run.table.len(),
            run.flow(),
            run.hot.len(),
            run.hot.flow_percentage()
        );
        rows.push(format!(
            "{},{},{},{},{:.2}",
            run.name,
            run.table.len(),
            run.flow(),
            run.hot.len(),
            run.hot.flow_percentage()
        ));
    }
    write_csv(
        &opts.out_dir,
        "table1.csv",
        "benchmark,paths,flow,hot_paths,hot_flow_pct",
        &rows,
    );

    // ---- Table 2 + Figure 4 ---------------------------------------------
    println!("\n== Table 2 / Figure 4: counter space ==");
    let mut t2 = Vec::new();
    let mut f4 = Vec::new();
    let mut ratios = Vec::new();
    for run in &runs {
        let heads = run.table.unique_heads();
        let paths = run.table.len().max(1);
        let ratio = heads as f64 / paths as f64;
        ratios.push(ratio);
        println!(
            "{:<10} heads={:<6} paths={:<7} net/pp={:.3}",
            run.name.to_string(),
            heads,
            paths,
            ratio
        );
        t2.push(format!("{},{},{}", run.name, paths, heads));
        f4.push(format!("{},{heads},{paths},{ratio:.4}", run.name));
    }
    let avg_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("Average net/pp counter space: {avg_ratio:.3}");
    f4.push(format!("average,,,{avg_ratio:.4}"));
    write_csv(
        &opts.out_dir,
        "table2.csv",
        "benchmark,paths,unique_path_heads",
        &t2,
    );
    write_csv(
        &opts.out_dir,
        "fig4_counter_space.csv",
        "benchmark,unique_heads,paths,net_over_pathprofile",
        &f4,
    );

    // ---- Figures 2 and 3 -------------------------------------------------
    println!("\n== Figures 2 & 3: tau sweeps ==");
    let swept = sweep_suite(&runs);
    let mut f2 = Vec::new();
    for sr in &swept {
        for pt in &sr.points {
            f2.push(format!(
                "{},{},{},{:.4},{:.4},{:.4},{:.4},{}",
                sr.name,
                sr.scheme,
                pt.delay,
                pt.outcome.profiled_flow_pct(),
                pt.outcome.hit_rate(),
                pt.outcome.noise_rate(),
                pt.outcome.moc_pct(),
                pt.outcome.counter_space,
            ));
        }
    }
    write_csv(
        &opts.out_dir,
        "fig2_hit_rates.csv",
        "benchmark,scheme,delay,profiled_flow_pct,hit_rate_pct,noise_rate_pct,moc_pct,counter_space",
        &f2,
    );
    write_csv(
        &opts.out_dir,
        "fig3_noise_rates.csv",
        "benchmark,scheme,delay,profiled_flow_pct,noise_rate_pct",
        &f2,
    );
    for scheme in [SchemeKind::PathProfile, SchemeKind::Net] {
        println!("-- {scheme} average: delay profiled% hit% noise% --");
        for (delay, prof, hit, noise) in average_series(&swept, scheme) {
            println!("  {delay:>8} {prof:>7.2}% {hit:>7.2}% {noise:>7.2}%");
        }
    }

    // ---- Figure 5 ---------------------------------------------------------
    println!("\n== Figure 5: Dynamo speedups ==");
    let mut f5 = Vec::new();
    for name in ALL_WORKLOADS.iter().filter(|w| w.in_dynamo_figure()) {
        let w = build(*name, opts.scale);
        let native = run_native(&w.program).expect("native");
        for scheme in [Scheme::Net, Scheme::PathProfile] {
            for delay in [10u64, 50, 100] {
                let label = format!("fig5/{name}/{scheme}/tau{delay}");
                telemetry::emit!(telemetry::Event::RunStart { label: &label });
                let out =
                    run_dynamo(&w.program, &DynamoConfig::new(scheme, delay)).expect("dynamo");
                telemetry::emit!(telemetry::Event::RunEnd { label: &label });
                println!(
                    "{:<10} {:<12} tau={:<4} speedup={:+.1}%{}",
                    name.to_string(),
                    scheme.to_string(),
                    delay,
                    out.speedup_percent(native),
                    if out.bailed_out { " (bail-out)" } else { "" }
                );
                f5.push(format!(
                    "{name},{scheme},{delay},{:.3},{}",
                    out.speedup_percent(native),
                    out.bailed_out
                ));
            }
        }
    }
    write_csv(
        &opts.out_dir,
        "fig5_dynamo_speedup.csv",
        "benchmark,scheme,delay,speedup_pct,bailed_out",
        &f5,
    );

    // ---- Linked-trace cross-check -----------------------------------------
    // The same selection policy, but executing predicted paths for real on
    // the VM's compiled-trace backend. Its cycle model is charged from the
    // measured link/guard counts, so simulated and executed speedups land
    // close — and the executed run must reproduce the simulated run's
    // fragment story.
    println!("\n== Linked-trace backend: simulated vs. executed (NET tau=50) ==");
    let mut linked_rows = Vec::new();
    for name in ALL_WORKLOADS.iter().filter(|w| w.in_dynamo_figure()) {
        let w = build(*name, opts.scale);
        let native = run_native(&w.program).expect("native");
        let config = DynamoConfig::new(Scheme::Net, 50);
        let sim = run_dynamo(&w.program, &config).expect("dynamo");
        let label = format!("linked/{name}/NET/tau50");
        telemetry::emit!(telemetry::Event::RunStart { label: &label });
        let real = run_dynamo_linked(&w.program, &config).expect("dynamo-linked");
        telemetry::emit!(telemetry::Event::RunEnd { label: &label });
        println!(
            "{:<10} sim={:+.1}% exec={:+.1}% cached={:.1}% fragments={}{}",
            name.to_string(),
            sim.speedup_percent(native),
            real.outcome.speedup_percent(native),
            real.outcome.cached_block_fraction * 100.0,
            real.outcome.fragments_installed,
            if real.outcome.bailed_out {
                " (bail-out)"
            } else {
                ""
            }
        );
        linked_rows.push(format!(
            "{name},{:.3},{:.3},{:.4},{},{}",
            sim.speedup_percent(native),
            real.outcome.speedup_percent(native),
            real.outcome.cached_block_fraction,
            real.outcome.fragments_installed,
            real.outcome.bailed_out
        ));
    }
    write_csv(
        &opts.out_dir,
        "linked_crosscheck.csv",
        "benchmark,sim_speedup_pct,exec_speedup_pct,cached_fraction,fragments,bailed_out",
        &linked_rows,
    );
    write_telemetry(&opts.out_dir, "all", &summary.snapshot());
    println!(
        "\nAll tables and figures regenerated into {}",
        opts.out_dir.display()
    );
}
