//! Regenerates **Table 1**: per benchmark, the total number of paths, the
//! flow, and the size and flow share of the 0.1% `HotPath` set.
//!
//! ```text
//! cargo run -p hotpath-bench --release --bin table1 -- --scale full
//! ```

use hotpath_bench::{record_suite_parallel, write_csv, Options};

fn main() {
    let opts = Options::from_env();
    let runs = record_suite_parallel(opts.scale);

    println!("\nTable 1. Benchmark set (hot threshold 0.1% of flow)");
    println!(
        "{:<10} {:>9} {:>12} {:>14} {:>9}",
        "Benchmark", "#Paths", "Flow", "Hot #Paths", "%Flow"
    );
    let mut rows = Vec::new();
    for run in &runs {
        println!(
            "{:<10} {:>9} {:>12} {:>14} {:>8.1}%",
            run.name.to_string(),
            run.table.len(),
            run.flow(),
            run.hot.len(),
            run.hot.flow_percentage()
        );
        rows.push(format!(
            "{},{},{},{},{:.2}",
            run.name,
            run.table.len(),
            run.flow(),
            run.hot.len(),
            run.hot.flow_percentage()
        ));
    }
    write_csv(
        &opts.out_dir,
        "table1.csv",
        "benchmark,paths,flow,hot_paths,hot_flow_pct",
        &rows,
    );
}
