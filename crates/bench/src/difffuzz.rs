//! Differential fuzzing of the trace-execution engine.
//!
//! For each seed, generate a random structured program
//! ([`hotpath_ir::gen`]) and run it through four configurations that
//! must agree bit-for-bit on the final machine state:
//!
//! 1. **reference** — plain interpretation ([`Vm::run`], null observer);
//! 2. **observed** — plain interpretation with the simulated Dynamo
//!    [`Engine`] attached (an observer must not perturb execution);
//! 3. **linked / linked-guards / linked-full** — the real trace backend
//!    ([`Vm::run_linked`]) driven by a [`LinkedEngine`], once per
//!    [`OptLevel`]: the trace optimizer must be invisible in results;
//! 4. **faulted / faulted-guards / faulted-full** — the linked backend
//!    again at each [`OptLevel`], with a seeded [`FaultPlan`] injecting
//!    spurious guard failures, forced flushes, fuel starvation, and
//!    install rejections.
//!
//! Agreement means identical `Result<RunStats, VmError>`, data memory,
//! and global registers. Any mismatch is a [`Divergence`]; the harness
//! then *shrinks* by replaying the seed under progressively smaller
//! generator configurations and reporting the smallest program that
//! still diverges.

use hotpath_dynamo::{DegradeConfig, DynamoConfig, Engine, LinkedEngine, Scheme};
use hotpath_ir::gen::{generate, GenConfig};
use hotpath_ir::Program;
use hotpath_vm::{
    FaultInjector, FaultPlan, FaultPoint, NullObserver, OptLevel, RunStats, Vm, VmError,
};

/// The optimization levels every seed is cross-checked at, with the stage
/// names the clean and faulted runs report under.
pub const OPT_STAGES: [(OptLevel, &str, &str); 3] = [
    (OptLevel::None, "linked", "faulted"),
    (OptLevel::Guards, "linked-guards", "faulted-guards"),
    (OptLevel::Full, "linked-full", "faulted-full"),
];

/// The fault points difffuzz injects, with per-event probabilities tuned
/// so a typical program sees a handful of each without drowning in
/// flushes. (`TracePanic` is exercised by unit tests, not fuzzing — its
/// recovery path prints to stderr by design.)
pub const FAULT_RATES: [(FaultPoint, f64); 4] = [
    (FaultPoint::GuardFail, 0.01),
    (FaultPoint::Flush, 0.001),
    (FaultPoint::FuelStarve, 0.02),
    (FaultPoint::InstallReject, 0.25),
];

/// Generator configurations tried during shrinking, largest (the fuzzing
/// default) first. A divergence is re-checked down the ladder and
/// reported at the smallest configuration that still reproduces.
pub const SHRINK_LADDER: [GenConfig; 4] = [
    // The fuzzing default: loop-heavier than the generator's own default
    // so traces actually form and link. Trip counts stay small because
    // worst-case work is multiplicative: a max_depth nest in main times a
    // (max_depth - 1) nest in a called helper is trip^7 blocks at
    // max_depth 4 — trip 6 keeps that under ~300k blocks, trip 24 would
    // be billions.
    GenConfig {
        max_depth: 4,
        max_stmts: 4,
        max_trip: 6,
        helper_funcs: 2,
        loop_weight: 45,
        memory_words: 64,
    },
    GenConfig {
        max_depth: 3,
        max_stmts: 3,
        max_trip: 6,
        helper_funcs: 1,
        loop_weight: 45,
        memory_words: 32,
    },
    GenConfig {
        max_depth: 2,
        max_stmts: 2,
        max_trip: 8,
        helper_funcs: 0,
        loop_weight: 45,
        memory_words: 16,
    },
    GenConfig {
        max_depth: 1,
        max_stmts: 2,
        max_trip: 4,
        helper_funcs: 0,
        loop_weight: 60,
        memory_words: 8,
    },
];

/// Harness options.
#[derive(Clone, Copy, Debug)]
pub struct FuzzOptions {
    /// XORed into each seed to derive its fault-injection stream, so the
    /// same programs can be replayed under different fault schedules.
    pub fault_seed: u64,
    /// Run the faulted stage at all.
    pub faults: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            fault_seed: 0xD1FF,
            faults: true,
        }
    }
}

/// Complete observable machine state after a run.
#[derive(Clone, PartialEq, Debug)]
pub struct FinalState {
    /// Run statistics, or the error the run failed with.
    pub result: Result<RunStats, VmError>,
    /// Data memory.
    pub memory: Vec<i64>,
    /// Global registers.
    pub globals: Vec<i64>,
}

impl FinalState {
    fn capture(vm: &Vm, result: Result<RunStats, VmError>) -> Self {
        FinalState {
            result,
            memory: vm.memory().to_vec(),
            globals: vm.globals().to_vec(),
        }
    }

    fn diff(&self, other: &Self) -> String {
        if self.result != other.result {
            return format!("result: {:?} vs {:?}", self.result, other.result);
        }
        if self.globals != other.globals {
            return format!("globals: {:?} vs {:?}", self.globals, other.globals);
        }
        for (i, (a, b)) in self.memory.iter().zip(&other.memory).enumerate() {
            if a != b {
                return format!("memory[{i}]: {a} vs {b}");
            }
        }
        "equal".to_owned()
    }
}

/// A cross-check failure: one stage disagreed with the reference.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The failing seed.
    pub seed: u64,
    /// Which stage disagreed (`"observed"`, `"linked"`, `"faulted"`, or
    /// an opt-level variant like `"linked-full"`; see [`OPT_STAGES`]).
    pub stage: &'static str,
    /// First differing component, reference vs stage.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {:#x}: stage `{}` diverged ({})",
            self.seed, self.stage, self.detail
        )
    }
}

/// What one clean seed exercised; aggregated into the harness summary.
#[derive(Clone, Copy, Default, Debug)]
pub struct SeedReport {
    /// Blocks the reference run executed.
    pub blocks: u64,
    /// Faults injected across the faulted stages (summed over opt
    /// levels), per [`FAULT_RATES`] entry.
    pub injected: [u64; FAULT_RATES.len()],
    /// Whether the seed ran with the degradation ladder enabled.
    pub degraded_config: bool,
}

/// The engine configuration a seed runs under: scheme alternates by
/// parity, the prediction delay is short so traces form quickly, and
/// every fourth seed enables the degradation ladder with a window small
/// enough to actually step during a fuzz-sized run.
pub fn engine_config(seed: u64) -> DynamoConfig {
    let scheme = if seed % 2 == 0 {
        Scheme::Net
    } else {
        Scheme::PathProfile
    };
    let mut config = DynamoConfig::new(scheme, 5);
    if seed % 4 == 3 {
        config.degrade = Some(DegradeConfig {
            window_events: 512,
            max_flushes_per_window: 2,
            ..DegradeConfig::default()
        });
    }
    config
}

/// The seed's fault plan (rates from [`FAULT_RATES`], stream seeded by
/// `seed ^ fault_seed`).
pub fn fault_plan(seed: u64, fault_seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed ^ fault_seed);
    for (point, rate) in FAULT_RATES {
        plan = plan.with(point, rate);
    }
    plan
}

fn reference(program: &Program) -> FinalState {
    let mut vm = Vm::new(program);
    let result = vm.run(&mut NullObserver);
    FinalState::capture(&vm, result)
}

/// Cross-checks one generated program.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_program(
    seed: u64,
    program: &Program,
    options: &FuzzOptions,
) -> Result<SeedReport, Divergence> {
    let expect = reference(program);
    let config = engine_config(seed);
    let mut report = SeedReport {
        blocks: expect.result.map_or(0, |s| s.blocks_executed),
        degraded_config: config.degrade.is_some(),
        ..SeedReport::default()
    };

    let diverged = |stage: &'static str, got: &FinalState| Divergence {
        seed,
        stage,
        detail: expect.diff(got),
    };

    // Stage 2: the simulated engine observes but must not perturb.
    {
        let mut vm = Vm::new(program);
        let mut engine = Engine::new(config.clone());
        let result = vm.run(&mut engine);
        let got = FinalState::capture(&vm, result);
        if got != expect {
            return Err(diverged("observed", &got));
        }
    }

    // Stage 3: the real trace backend, clean, at every optimization
    // level — the optimizer must be invisible in results.
    for (level, stage, _) in OPT_STAGES {
        let mut vm = Vm::new(program).with_opt_level(level);
        let mut engine = LinkedEngine::new(config.clone().with_opt_level(level));
        let result = vm.run_linked(&mut engine);
        let got = FinalState::capture(&vm, result);
        if got != expect {
            return Err(diverged(stage, &got));
        }
    }

    // Stage 4: the real trace backend under fault injection, again at
    // every level. Fault *draw sites* differ across levels (optimized
    // traces reach fewer guards), so each level sees its own schedule;
    // every injected fault is semantics-preserving, so each run must
    // still match the reference independently.
    if options.faults {
        for (level, _, stage) in OPT_STAGES {
            let mut vm = Vm::new(program)
                .with_opt_level(level)
                .with_faults(FaultInjector::new(fault_plan(seed, options.fault_seed)));
            let mut engine = LinkedEngine::new(config.clone().with_opt_level(level));
            let result = vm.run_linked(&mut engine);
            let got = FinalState::capture(&vm, result);
            for (i, (point, _)) in FAULT_RATES.iter().enumerate() {
                report.injected[i] += vm.faults().injected(*point);
            }
            if got != expect {
                return Err(diverged(stage, &got));
            }
        }
    }

    Ok(report)
}

/// Cross-checks one seed at the default (largest) generator
/// configuration.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_seed(seed: u64, options: &FuzzOptions) -> Result<SeedReport, Divergence> {
    check_program(seed, &generate(seed, &SHRINK_LADDER[0]), options)
}

/// Replays a failing seed down [`SHRINK_LADDER`] and returns the
/// divergence at the smallest configuration that still reproduces,
/// together with that configuration.
pub fn shrink(seed: u64, options: &FuzzOptions) -> (GenConfig, Divergence) {
    let mut best = None;
    for config in SHRINK_LADDER {
        if let Err(d) = check_program(seed, &generate(seed, &config), options) {
            best = Some((config, d));
        }
    }
    best.expect("shrink is only called on seeds that diverge")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_batch_is_divergence_free() {
        let options = FuzzOptions::default();
        let mut blocks = 0;
        for seed in 0..24 {
            let report = check_seed(seed, &options).unwrap_or_else(|d| panic!("{d}"));
            blocks += report.blocks;
        }
        assert!(blocks > 0, "generated programs must execute something");
    }

    #[test]
    fn faults_actually_fire_somewhere() {
        let options = FuzzOptions::default();
        let mut injected = [0u64; FAULT_RATES.len()];
        for seed in 0..48 {
            let report = check_seed(seed, &options).unwrap_or_else(|d| panic!("{d}"));
            for (total, n) in injected.iter_mut().zip(report.injected) {
                *total += n;
            }
        }
        // Install rejections are near-certain; the per-event points need
        // enough trace traffic, so only assert the aggregate.
        assert!(
            injected.iter().sum::<u64>() > 0,
            "no faults injected across 48 seeds: {injected:?}"
        );
    }

    #[test]
    fn every_ladder_rung_generates_valid_programs() {
        for config in SHRINK_LADDER {
            let state = reference(&generate(7, &config));
            assert!(state.result.is_ok());
        }
    }
}
