//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary follows the same recipe: build workloads at a scale chosen
//! on the command line, record each workload's path stream once
//! ([`record_workload`]), then compute whatever the table or figure needs
//! and print paper-style rows (also written as CSV under `results/`).

#![warn(missing_docs)]

mod chart;
pub mod compare;
pub mod difffuzz;

pub use chart::ascii_chart;

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use hotpath_core::{sweep, SchemeKind, SweepPoint, DEFAULT_DELAYS};
use hotpath_profiles::{HotPathSet, PathExtractor, PathStream, PathTable, StreamingSink};
use hotpath_vm::{RunStats, Vm};
use hotpath_workloads::{Scale, Workload, WorkloadName};

/// The hot threshold used throughout the paper: 0.1% of total flow.
pub const HOT_FRACTION: f64 = 0.001;

/// One workload's recorded run: everything the experiments replay.
#[derive(Debug)]
pub struct RecordedRun {
    /// Which benchmark.
    pub name: WorkloadName,
    /// The recorded path-execution stream.
    pub stream: PathStream,
    /// Interned paths.
    pub table: PathTable,
    /// The 0.1% hot set.
    pub hot: HotPathSet,
    /// VM run statistics.
    pub stats: RunStats,
    /// Wall-clock seconds spent building and recording this workload.
    pub record_secs: f64,
}

impl RecordedRun {
    /// Total flow (path executions).
    pub fn flow(&self) -> u64 {
        self.stream.len() as u64
    }
}

/// Builds and records one workload.
///
/// # Panics
///
/// Panics if the workload fails to execute — experiment inputs are
/// programmer-controlled, so failures are bugs.
pub fn record_workload(workload: &Workload) -> RecordedRun {
    let _selfprof_record =
        hotpath_selfprof::StageGuard::enter(hotpath_selfprof::Stage::BenchRecord);
    let started = Instant::now();
    let mut extractor = PathExtractor::new(StreamingSink::new());
    let mut vm = Vm::new(&workload.program);
    let stats = vm
        .run(&mut extractor)
        .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name));
    let (sink, table) = extractor.into_parts();
    let stream = sink.into_stream();
    let hot = stream.to_profile().hot_set(HOT_FRACTION);
    eprintln!(
        "[record] {:<10} flow={:>10} paths={:>6} heads={:>5} blocks={:>11} ({:.1}s)",
        workload.name.to_string(),
        stream.len(),
        table.len(),
        table.unique_heads(),
        stats.blocks_executed,
        started.elapsed().as_secs_f64()
    );
    RecordedRun {
        name: workload.name,
        stream,
        table,
        hot,
        stats,
        record_secs: started.elapsed().as_secs_f64(),
    }
}

/// Records the whole suite serially, in [`ALL_WORKLOADS`] order — the
/// reference recorder; total wall clock is the sum over workloads.
///
/// [`ALL_WORKLOADS`]: hotpath_workloads::ALL_WORKLOADS
pub fn record_suite_serial(scale: Scale) -> Vec<RecordedRun> {
    hotpath_workloads::ALL_WORKLOADS
        .iter()
        .map(|&name| {
            let w = hotpath_workloads::build(name, scale);
            record_workload(&w)
        })
        .collect()
}

/// Records the whole suite with one scoped thread per workload; wall clock
/// is roughly the slowest workload instead of the sum. Results come back
/// in [`ALL_WORKLOADS`] order regardless of which worker finishes first,
/// so downstream tables are deterministic.
///
/// [`ALL_WORKLOADS`]: hotpath_workloads::ALL_WORKLOADS
pub fn record_suite_parallel(scale: Scale) -> Vec<RecordedRun> {
    std::thread::scope(|s| {
        let handles: Vec<_> = hotpath_workloads::ALL_WORKLOADS
            .iter()
            .map(|&name| {
                s.spawn(move || {
                    let w = hotpath_workloads::build(name, scale);
                    record_workload(&w)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    })
}

/// Records the whole suite; alias for [`record_suite_parallel`].
pub fn record_suite(scale: Scale) -> Vec<RecordedRun> {
    record_suite_parallel(scale)
}

/// Command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Workload scale (default [`Scale::Small`]; pass `--scale full` for
    /// the paper-sized runs).
    pub scale: Scale,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

impl Options {
    /// Parses `--scale smoke|small|full` and `--out DIR` from `args`.
    ///
    /// # Panics
    ///
    /// Panics (with usage help) on unknown arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Options {
        let mut scale = Scale::Small;
        let mut out_dir = PathBuf::from("results");
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    scale = match v.as_str() {
                        "smoke" => Scale::Smoke,
                        "small" => Scale::Small,
                        "full" => Scale::Full,
                        other => panic!("unknown scale `{other}` (smoke|small|full)"),
                    };
                }
                "--out" => {
                    out_dir = PathBuf::from(it.next().expect("--out needs a value"));
                }
                other => panic!(
                    "unknown argument `{other}` (usage: [--scale smoke|small|full] [--out DIR])"
                ),
            }
        }
        Options { scale, out_dir }
    }

    /// Parses the process arguments.
    pub fn from_env() -> Options {
        Self::parse(std::env::args().skip(1))
    }
}

/// One benchmark's τ-sweep under one scheme.
#[derive(Debug)]
pub struct SweptRun {
    /// Benchmark name.
    pub name: WorkloadName,
    /// Scheme swept.
    pub scheme: SchemeKind,
    /// One point per delay in [`DEFAULT_DELAYS`].
    pub points: Vec<SweepPoint>,
}

/// Sweeps both schemes over every recorded run (Figures 2 and 3 share
/// this data). Parallel over (run, scheme) pairs.
pub fn sweep_suite(runs: &[RecordedRun]) -> Vec<SweptRun> {
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for run in runs {
            for scheme in [SchemeKind::Net, SchemeKind::PathProfile] {
                handles.push(s.spawn(move || SweptRun {
                    name: run.name,
                    scheme,
                    points: sweep(&run.stream, &run.table, &run.hot, scheme, &DEFAULT_DELAYS),
                }));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    })
}

/// Per-delay averages across benchmarks for one scheme: returns
/// `(delay, avg profiled %, avg hit %, avg noise %)` rows — the "Average"
/// series of Figures 2 and 3.
pub fn average_series(swept: &[SweptRun], scheme: SchemeKind) -> Vec<(u64, f64, f64, f64)> {
    let of_scheme: Vec<&SweptRun> = swept.iter().filter(|r| r.scheme == scheme).collect();
    if of_scheme.is_empty() {
        return Vec::new();
    }
    let npoints = of_scheme[0].points.len();
    (0..npoints)
        .map(|i| {
            let n = of_scheme.len() as f64;
            let delay = of_scheme[0].points[i].delay;
            let avg = |f: &dyn Fn(&SweepPoint) -> f64| {
                of_scheme.iter().map(|r| f(&r.points[i])).sum::<f64>() / n
            };
            (
                delay,
                avg(&|p| p.outcome.profiled_flow_pct()),
                avg(&|p| p.outcome.hit_rate()),
                avg(&|p| p.outcome.noise_rate()),
            )
        })
        .collect()
}

/// Writes a [`TelemetrySummary`] as `telemetry.json` under the output
/// directory and returns the path.
///
/// [`TelemetrySummary`]: hotpath_telemetry::TelemetrySummary
///
/// # Panics
///
/// Panics on I/O errors — experiment outputs must not be silently lost.
pub fn write_telemetry(
    dir: &Path,
    label: &str,
    summary: &hotpath_telemetry::TelemetrySummary,
) -> PathBuf {
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("telemetry.json");
    fs::write(&path, summary.to_json(label)).expect("write telemetry.json");
    eprintln!("[telemetry] wrote {}", path.display());
    path
}

/// Writes CSV rows (with header) under the output directory.
///
/// # Panics
///
/// Panics on I/O errors — experiment outputs must not be silently lost.
pub fn write_csv(dir: &Path, file: &str, header: &str, rows: &[String]) {
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(file);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    eprintln!("[csv] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_defaults_and_flags() {
        let o = Options::parse(Vec::<String>::new());
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.out_dir, PathBuf::from("results"));
        let o = Options::parse(
            ["--scale", "full", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(o.scale, Scale::Full);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn options_reject_unknown() {
        let _ = Options::parse(["--bogus".to_string()]);
    }

    #[test]
    fn record_one_workload_smoke() {
        let w = hotpath_workloads::build(WorkloadName::Compress, Scale::Smoke);
        let run = record_workload(&w);
        assert!(run.flow() > 0);
        assert_eq!(run.stream.len(), run.flow() as usize);
        assert!(run.hot.hot_flow() > 0);
        assert!(run.stats.halted);
    }
}
