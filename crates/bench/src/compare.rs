//! Snapshot comparison for the regression gate.
//!
//! [`bench_compare`] (the binary built from this module's API) diffs two
//! pipeline snapshots and decides whether the second one regressed:
//!
//! * **Perf documents** (`BENCH_perf.json`, written by `perf_baseline`):
//!   per-mode `blocks_per_sec` is compared and any mode slower than
//!   `baseline * (1 - tolerance)` is a regression. With
//!   [`CompareOptions::relative`] each mode is first normalized by the
//!   run's own `native` rate, which cancels machine speed and makes the
//!   gate portable across CI hosts — only the profiling *overhead ratio*
//!   is gated, which is the quantity the paper argues about.
//! * **Warm-start runs** (`loadgen --warm-start`): [`warm_start_gate`]
//!   requires every workload's pre-warmed blocks-to-first-trace to sit
//!   strictly below its cold number and the pre-warmed throughput to
//!   hold within the tolerance of the cold run's.
//! * **Telemetry documents** (`telemetry.json`, written by `all` or
//!   `perf_baseline --telemetry`): event counts are diffed exactly. Events
//!   carry logical clocks only, so identical builds must produce identical
//!   counts; any difference is reported as a behavioral change. Wall-clock
//!   `timings` are documented nondeterministic and excluded.
//!
//! The documents are parsed with the dependency-free
//! [`hotpath_telemetry::json`] value parser.
//!
//! [`bench_compare`]: index.html

use hotpath_telemetry::json::JsonValue;

/// Default regression tolerance: 10% blocks/sec loss.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// One mode's measurements inside a perf run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ModePerf {
    /// Best wall seconds over the suite.
    pub secs: f64,
    /// Suite blocks divided by `secs`.
    pub blocks_per_sec: f64,
    /// Guard checks executed in trace-land over the suite (`None` for
    /// modes that run no traces and for documents predating the field).
    /// Deterministic, so the gate treats any increase as a regression.
    pub guard_execs: Option<f64>,
}

/// One workload's cold vs pre-warmed time-to-first-trace record from a
/// `loadgen --warm-start` run. Both numbers count dynamic blocks
/// executed before the session's first fragment install became visible,
/// so they are deterministic and portable across hosts.
#[derive(Clone, PartialEq, Debug)]
pub struct WarmStartPoint {
    /// Workload name.
    pub workload: String,
    /// Blocks to first trace for the cold session.
    pub cold_blocks_to_first_trace: f64,
    /// Blocks to first trace for the pre-warmed session.
    pub prewarmed_blocks_to_first_trace: f64,
}

/// The fault-injection record of a `loadgen --chaos` run: how much
/// chaos the pass absorbed and what it cost. Counts are deterministic
/// for a fixed seed/rate/scale, so the gate can require them exactly.
#[derive(Clone, PartialEq, Debug)]
pub struct ChaosSection {
    /// Per-point firing probability the run was recorded under.
    pub rate: f64,
    /// Sessions driven to completion across both front-ends.
    pub completed: f64,
    /// Sessions left in the server's tables after the closes.
    pub leaked: f64,
    /// Sessions whose final statistics diverged from the native run.
    pub divergent: f64,
    /// Shard workers that panicked and were restarted.
    pub shards_restarted: f64,
    /// Sessions re-admitted into restarted shards.
    pub sessions_readmitted: f64,
    /// Publishes routed to the quarantine bucket (probabilistic passes
    /// plus the directed `PublishPoison` check).
    pub profiles_quarantined: f64,
    /// Client-side request retries across every driver.
    pub client_retries: f64,
    /// Client-side reconnects after connection loss.
    pub client_reconnects: f64,
}

impl ChaosSection {
    /// Injected faults the pass visibly absorbed — the gate requires
    /// this to be positive, or the run proved nothing.
    pub fn faults_observed(&self) -> f64 {
        self.client_retries
            + self.client_reconnects
            + self.shards_restarted
            + self.profiles_quarantined
    }
}

/// The serve-path allocation profile of a `loadgen` run recorded under a
/// `selfprof-alloc` build: every byte and allocation the measuring
/// allocator attributed to a serving stage, normalized per interpreted
/// block. The per-block ratios are what [`alloc_gate`] compares — they
/// cancel run length, so two runs at different scales still gate.
#[derive(Clone, PartialEq, Debug)]
pub struct AllocSection {
    /// Serve-path heap bytes allocated per interpreted block.
    pub bytes_per_block: f64,
    /// Serve-path allocator calls per interpreted block.
    pub allocs_per_block: f64,
    /// Total serve-path bytes over the run.
    pub alloc_bytes: f64,
    /// Total serve-path allocator calls over the run.
    pub alloc_count: f64,
    /// Blocks the serving modes interpreted (the normalizer).
    pub served_blocks: f64,
    /// Per-stage `(name, bytes, count)` breakdown, in document order.
    pub stages: Vec<(String, f64, f64)>,
}

/// One labelled `perf_baseline` invocation.
#[derive(Clone, PartialEq, Debug)]
pub struct PerfRun {
    /// The `--label` the run was recorded under.
    pub label: String,
    /// Workload scale (`smoke`/`small`/`full`).
    pub scale: String,
    /// Dynamic blocks interpreted per mode over the whole suite.
    pub total_blocks: f64,
    /// Concurrent sessions driven (`loadgen` runs; `None` for
    /// `perf_baseline` documents, which have no session concept).
    pub sessions: Option<f64>,
    /// Per-mode measurements in document order.
    pub modes: Vec<(String, ModePerf)>,
    /// Per-workload warm-start records (`loadgen --warm-start` runs;
    /// empty for every other document).
    pub warm_start: Vec<WarmStartPoint>,
    /// Fault-injection record (`loadgen --chaos` runs; `None` for every
    /// other document).
    pub chaos: Option<ChaosSection>,
    /// Serve-path allocation profile (`selfprof-alloc` loadgen runs;
    /// `None` for every other document).
    pub alloc: Option<AllocSection>,
}

impl PerfRun {
    /// The measurement for `mode`, if the run recorded it.
    pub fn mode(&self, mode: &str) -> Option<ModePerf> {
        self.modes
            .iter()
            .find(|(name, _)| name == mode)
            .map(|&(_, perf)| perf)
    }
}

/// Which kind of snapshot a file holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DocKind {
    /// A `BENCH_perf.json` throughput document (`{"runs": [...]}`).
    Perf,
    /// A `telemetry.json` summary (`{"events": {...}, ...}`).
    Telemetry,
}

/// Sniffs the document kind from its top-level keys.
///
/// # Errors
///
/// Returns a message when the text is not JSON or matches neither format.
pub fn detect_kind(text: &str) -> Result<DocKind, String> {
    let value = JsonValue::parse(text)?;
    if value.get("runs").is_some() {
        Ok(DocKind::Perf)
    } else if value.get("events").is_some() {
        Ok(DocKind::Telemetry)
    } else {
        Err("document has neither a \"runs\" nor an \"events\" key".into())
    }
}

/// Parses every labelled run out of a `BENCH_perf.json` document.
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn parse_perf_runs(text: &str) -> Result<Vec<PerfRun>, String> {
    let value = JsonValue::parse(text)?;
    let runs = value
        .get("runs")
        .and_then(|r| r.as_arr())
        .ok_or("missing top-level \"runs\" array")?;
    runs.iter()
        .enumerate()
        .map(|(i, run)| {
            let str_field = |key: &str| {
                run.get(key)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("run #{i}: missing string \"{key}\""))
            };
            let modes = run
                .get("modes")
                .and_then(|m| m.as_obj())
                .ok_or_else(|| format!("run #{i}: missing \"modes\" object"))?;
            let modes = modes
                .iter()
                .map(|(name, mode)| {
                    let num = |key: &str| {
                        mode.get(key).and_then(|v| v.as_f64()).ok_or_else(|| {
                            format!("run #{i} mode {name}: missing number \"{key}\"")
                        })
                    };
                    Ok((
                        name.clone(),
                        ModePerf {
                            secs: num("secs")?,
                            blocks_per_sec: num("blocks_per_sec")?,
                            guard_execs: mode.get("guard_execs").and_then(|v| v.as_f64()),
                        },
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?;
            let warm_start = match run.get("warm_start").and_then(|w| w.as_obj()) {
                Some(entries) => entries
                    .iter()
                    .map(|(workload, point)| {
                        let num = |key: &str| {
                            point.get(key).and_then(|v| v.as_f64()).ok_or_else(|| {
                                format!("run #{i} warm_start {workload}: missing number \"{key}\"")
                            })
                        };
                        Ok(WarmStartPoint {
                            workload: workload.clone(),
                            cold_blocks_to_first_trace: num("cold_blocks_to_first_trace")?,
                            prewarmed_blocks_to_first_trace: num(
                                "prewarmed_blocks_to_first_trace",
                            )?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                None => Vec::new(),
            };
            let chaos = match run.get("chaos") {
                Some(section) if section.as_obj().is_some() => {
                    let num = |key: &str| {
                        section
                            .get(key)
                            .and_then(|v| v.as_f64())
                            .ok_or_else(|| format!("run #{i} chaos: missing number \"{key}\""))
                    };
                    Some(ChaosSection {
                        rate: num("rate")?,
                        completed: num("completed")?,
                        leaked: num("leaked")?,
                        divergent: num("divergent")?,
                        shards_restarted: num("shards_restarted")?,
                        sessions_readmitted: num("sessions_readmitted")?,
                        profiles_quarantined: num("profiles_quarantined")?,
                        client_retries: num("client_retries")?,
                        client_reconnects: num("client_reconnects")?,
                    })
                }
                _ => None,
            };
            let alloc = match run.get("alloc") {
                Some(section) if section.as_obj().is_some() => {
                    let num = |key: &str| {
                        section
                            .get(key)
                            .and_then(|v| v.as_f64())
                            .ok_or_else(|| format!("run #{i} alloc: missing number \"{key}\""))
                    };
                    let stages = match section.get("stages").and_then(|s| s.as_obj()) {
                        Some(entries) => entries
                            .iter()
                            .map(|(name, stage)| {
                                let num = |key: &str| {
                                    stage.get(key).and_then(|v| v.as_f64()).ok_or_else(|| {
                                        format!(
                                            "run #{i} alloc stage {name}: missing number \"{key}\""
                                        )
                                    })
                                };
                                Ok((name.clone(), num("bytes")?, num("count")?))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        None => Vec::new(),
                    };
                    Some(AllocSection {
                        bytes_per_block: num("bytes_per_block")?,
                        allocs_per_block: num("allocs_per_block")?,
                        alloc_bytes: num("alloc_bytes")?,
                        alloc_count: num("alloc_count")?,
                        served_blocks: num("served_blocks")?,
                        stages,
                    })
                }
                _ => None,
            };
            Ok(PerfRun {
                label: str_field("label")?,
                scale: str_field("scale")?,
                total_blocks: run
                    .get("total_blocks")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("run #{i}: missing number \"total_blocks\""))?,
                sessions: run.get("sessions").and_then(|v| v.as_f64()),
                modes,
                warm_start,
                chaos,
                alloc,
            })
        })
        .collect()
}

/// Picks a run by label, or the last one when `label` is `None` (the most
/// recent append).
///
/// # Errors
///
/// Returns a message listing the available labels.
pub fn select_run<'a>(runs: &'a [PerfRun], label: Option<&str>) -> Result<&'a PerfRun, String> {
    match label {
        Some(want) => runs.iter().rev().find(|r| r.label == want).ok_or_else(|| {
            let labels: Vec<&str> = runs.iter().map(|r| r.label.as_str()).collect();
            format!("no run labelled `{want}` (have: {})", labels.join(", "))
        }),
        None => runs.last().ok_or_else(|| "document holds no runs".into()),
    }
}

/// Knobs for a perf comparison.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CompareOptions {
    /// Allowed fractional blocks/sec loss before a mode counts as
    /// regressed (0.10 = 10%).
    pub tolerance: f64,
    /// Gate on rates normalized by each run's own `native` mode instead of
    /// raw blocks/sec, cancelling machine speed (for cross-host CI).
    pub relative: bool,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            tolerance: DEFAULT_TOLERANCE,
            relative: false,
        }
    }
}

/// One mode's verdict.
#[derive(Clone, PartialEq, Debug)]
pub struct ModeDelta {
    /// Mode name (`native`, `net`, …).
    pub mode: String,
    /// Baseline metric (blocks/sec, or native-relative fraction).
    pub baseline: f64,
    /// Current metric.
    pub current: f64,
    /// `current / baseline`; below `1 - tolerance` means regressed.
    pub ratio: f64,
    /// Guard-exec counts, `(baseline, current)`, when both runs record
    /// them for this mode.
    pub guards: Option<(f64, f64)>,
    /// Guard checks increased — a hard failure regardless of tolerance:
    /// the counts are deterministic, so any increase means the optimizer
    /// lost ground.
    pub guards_regressed: bool,
    /// Whether this mode regressed (throughput beyond the tolerance, or
    /// a guard-count increase).
    pub regressed: bool,
}

/// Outcome of comparing two perf runs.
#[derive(Clone, PartialEq, Debug)]
pub struct CompareReport {
    /// Label of the baseline run.
    pub baseline_label: String,
    /// Label of the current run.
    pub current_label: String,
    /// The options the comparison ran under.
    pub options: CompareOptions,
    /// Per-mode verdicts, in baseline mode order.
    pub deltas: Vec<ModeDelta>,
}

impl CompareReport {
    /// The modes that regressed beyond the tolerance.
    pub fn regressions(&self) -> impl Iterator<Item = &ModeDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// True when no mode regressed.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let metric = if self.options.relative {
            "rate/native"
        } else {
            "blocks/sec"
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf gate: `{}` -> `{}` ({metric}, tolerance {:.0}%)",
            self.baseline_label,
            self.current_label,
            self.options.tolerance * 100.0
        );
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>14} {:>8}  verdict",
            "mode", "baseline", "current", "ratio"
        );
        for d in &self.deltas {
            let verdict = if d.guards_regressed {
                "REGRESSED (guard execs increased)"
            } else if d.regressed {
                "REGRESSED"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<18} {:>14.3} {:>14.3} {:>7.3}x  {}",
                d.mode, d.baseline, d.current, d.ratio, verdict
            );
            if let Some((b, c)) = d.guards {
                let _ = writeln!(
                    out,
                    "{:<18} {:>14.0} {:>14.0}           guard execs",
                    "", b, c
                );
            }
        }
        out
    }
}

/// Compares two perf runs mode-by-mode.
///
/// Modes present in only one run are skipped — the gate judges the shared
/// surface. In relative mode the `native` row is reported (it is the
/// normalizer, always 1.0) but never gated. When both runs record
/// `guard_execs` for a mode, any increase is a regression outright —
/// the counts are deterministic, so tolerance does not apply.
///
/// # Errors
///
/// Returns a message when relative mode is requested and either run lacks
/// a `native` measurement (or carries a zero / non-finite one — nothing
/// can be normalized by that), when a gated baseline or current metric is
/// not a finite positive number (a NaN ratio would silently pass any
/// `<` comparison), or when the runs share no modes.
pub fn compare_perf(
    baseline: &PerfRun,
    current: &PerfRun,
    options: CompareOptions,
) -> Result<CompareReport, String> {
    let normalizer = |run: &PerfRun| -> Result<f64, String> {
        if !options.relative {
            return Ok(1.0);
        }
        let native = run.mode("native").ok_or_else(|| {
            format!(
                "run `{}` has no `native` mode; relative mode needs one to normalize by",
                run.label
            )
        })?;
        let rate = native.blocks_per_sec;
        if !(rate.is_finite() && rate > 0.0) {
            return Err(format!(
                "run `{}` has an unusable native rate ({rate}); cannot normalize by it",
                run.label
            ));
        }
        Ok(rate)
    };
    let base_norm = normalizer(baseline)?;
    let cur_norm = normalizer(current)?;
    let mut deltas = Vec::new();
    for (mode, base) in &baseline.modes {
        let Some(cur) = current.mode(mode) else {
            continue;
        };
        let base_metric = base.blocks_per_sec / base_norm;
        let cur_metric = cur.blocks_per_sec / cur_norm;
        if !(base_metric.is_finite() && base_metric > 0.0) {
            return Err(format!(
                "mode `{mode}` in baseline run `{}` has unusable metric {base_metric}",
                baseline.label
            ));
        }
        if !cur_metric.is_finite() {
            return Err(format!(
                "mode `{mode}` in current run `{}` has unusable metric {cur_metric}",
                current.label
            ));
        }
        let ratio = cur_metric / base_metric;
        let gated = !(options.relative && mode == "native");
        let guards = match (base.guard_execs, cur.guard_execs) {
            (Some(b), Some(c)) => Some((b, c)),
            _ => None,
        };
        let guards_regressed = guards.is_some_and(|(b, c)| c > b);
        deltas.push(ModeDelta {
            mode: mode.clone(),
            baseline: base_metric,
            current: cur_metric,
            ratio,
            guards,
            guards_regressed,
            regressed: (gated && ratio < 1.0 - options.tolerance) || guards_regressed,
        });
    }
    if deltas.is_empty() {
        return Err(format!(
            "runs `{}` and `{}` share no modes",
            baseline.label, current.label
        ));
    }
    Ok(CompareReport {
        baseline_label: baseline.label.clone(),
        current_label: current.label.clone(),
        options,
        deltas,
    })
}

/// One mode's cumulative drift across a document's committed runs.
#[derive(Clone, PartialEq, Debug)]
pub struct TrendDrift {
    /// Mode name.
    pub mode: String,
    /// Label of the earliest run recording this mode.
    pub first_label: String,
    /// Label of the latest run recording this mode.
    pub last_label: String,
    /// Native-relative rate in the earliest run.
    pub first: f64,
    /// Native-relative rate in the latest run.
    pub last: f64,
    /// `last / first`; below `1 - tolerance` draws a warning.
    pub ratio: f64,
    /// How many committed runs record this mode.
    pub samples: usize,
    /// Whether the cumulative drift exceeds the tolerance.
    pub warned: bool,
}

/// Outcome of a cumulative-trend scan over a whole perf document.
///
/// The trend is *advisory*: the pairwise gate already fails hard on a
/// single-step regression, so the trend's job is to catch slow bleed —
/// each step inside tolerance, the sum well outside it — and it warns
/// instead of failing.
#[derive(Clone, PartialEq, Debug)]
pub struct TrendReport {
    /// Per-mode drift, in first-appearance order.
    pub drifts: Vec<TrendDrift>,
    /// The warning threshold the scan ran under.
    pub tolerance: f64,
}

impl TrendReport {
    /// The modes whose cumulative drift exceeds the tolerance.
    pub fn warnings(&self) -> impl Iterator<Item = &TrendDrift> {
        self.drifts.iter().filter(|d| d.warned)
    }

    /// Renders the scan as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf trend: cumulative drift across committed runs \
             (native-relative, warn below {:.0}%)",
            (1.0 - self.tolerance) * 100.0
        );
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>10} {:>8} {:>8}  span",
            "mode", "first", "last", "ratio", "runs"
        );
        for d in &self.drifts {
            let _ = writeln!(
                out,
                "{:<20} {:>10.3} {:>10.3} {:>7.3}x {:>8}  {} -> {}{}",
                d.mode,
                d.first,
                d.last,
                d.ratio,
                d.samples,
                d.first_label,
                d.last_label,
                if d.warned {
                    "  WARN: drifting down"
                } else {
                    ""
                }
            );
        }
        out
    }
}

/// Scans every run in document order and reports each mode's cumulative
/// drift: its native-relative rate in the earliest run that records it
/// versus the latest. Normalizing by each run's own `native` rate makes
/// runs recorded on different hosts comparable; runs without a usable
/// `native` mode are skipped, and `native` itself (identically 1.0) is
/// not reported.
///
/// # Errors
///
/// Returns a message when fewer than two runs carry a usable `native`
/// normalizer — there is no trend in a single sample.
pub fn perf_trend(runs: &[PerfRun], tolerance: f64) -> Result<TrendReport, String> {
    /// Accumulator: mode, first and last `(label, rate)` seen, samples.
    type Series = (String, (String, f64), (String, f64), usize);
    let mut series: Vec<Series> = Vec::new();
    let mut usable_runs = 0usize;
    for run in runs {
        let Some(native) = run.mode("native") else {
            continue;
        };
        let norm = native.blocks_per_sec;
        if !(norm.is_finite() && norm > 0.0) {
            continue;
        }
        usable_runs += 1;
        for (mode, perf) in &run.modes {
            if mode == "native" {
                continue;
            }
            let rate = perf.blocks_per_sec / norm;
            if !rate.is_finite() {
                continue;
            }
            match series.iter_mut().find(|(name, ..)| name == mode) {
                Some((_, _, last, samples)) => {
                    *last = (run.label.clone(), rate);
                    *samples += 1;
                }
                None => series.push((
                    mode.clone(),
                    (run.label.clone(), rate),
                    (run.label.clone(), rate),
                    1,
                )),
            }
        }
    }
    if usable_runs < 2 {
        return Err(format!(
            "need at least two runs with a usable `native` mode to trend, have {usable_runs}"
        ));
    }
    let drifts = series
        .into_iter()
        .map(
            |(mode, (first_label, first), (last_label, last), samples)| {
                let ratio = last / first;
                TrendDrift {
                    mode,
                    first_label,
                    last_label,
                    first,
                    last,
                    ratio,
                    samples,
                    warned: samples >= 2 && first > 0.0 && ratio < 1.0 - tolerance,
                }
            },
        )
        .collect();
    Ok(TrendReport { drifts, tolerance })
}

/// Default sweep-curve floor: aggregate throughput at the largest scale
/// must hold at least half the smallest-scale rate.
pub const DEFAULT_CURVE_FLOOR: f64 = 0.5;

/// One point on a committed scale-sweep curve.
#[derive(Clone, PartialEq, Debug)]
pub struct CurvePoint {
    /// Concurrent sessions at this point.
    pub sessions: f64,
    /// The run's label (`PREFIX-nN`).
    pub label: String,
    /// Aggregate serving throughput, blocks/sec.
    pub rate: f64,
}

/// Outcome of gating a scale-sweep curve.
#[derive(Clone, PartialEq, Debug)]
pub struct CurveReport {
    /// The label prefix the points were collected under.
    pub prefix: String,
    /// Required `largest rate / smallest rate` fraction.
    pub floor: f64,
    /// The curve, sorted by session count (latest run per count wins).
    pub points: Vec<CurvePoint>,
    /// `rate(largest) / rate(smallest)`.
    pub retention: f64,
    /// Whether the retention clears the floor.
    pub passed: bool,
}

impl CurveReport {
    /// Renders the curve and verdict as text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep curve `{}-nN`: throughput retention floor {:.0}%",
            self.prefix,
            self.floor * 100.0
        );
        let _ = writeln!(out, "{:>10} {:>16}  label", "sessions", "blocks/sec");
        for p in &self.points {
            let _ = writeln!(out, "{:>10.0} {:>16.0}  {}", p.sessions, p.rate, p.label);
        }
        let _ = writeln!(
            out,
            "retention at scale: {:.3} ({})",
            self.retention,
            if self.passed { "ok" } else { "BELOW FLOOR" }
        );
        out
    }
}

/// Gates a committed scale-sweep curve: collects every run labelled
/// `PREFIX-nN` (session count from the run's `sessions` field, falling
/// back to parsing the label suffix), keeps the latest run per count,
/// and requires the `serve-aggregate` rate at the largest N to hold at
/// least `floor` times the rate at the smallest N — throughput must
/// degrade gracefully with concurrency, not collapse.
///
/// # Errors
///
/// Returns a message when fewer than two distinct session counts match,
/// a matching run lacks a `serve-aggregate` mode or carries a
/// non-finite/non-positive rate, or `floor` is not in `(0, 1]`.
pub fn sweep_curve(runs: &[PerfRun], prefix: &str, floor: f64) -> Result<CurveReport, String> {
    if !(floor > 0.0 && floor <= 1.0) {
        return Err(format!("curve floor {floor} must be in (0, 1]"));
    }
    let mut points: Vec<CurvePoint> = Vec::new();
    for run in runs {
        let Some(suffix) = run
            .label
            .strip_prefix(prefix)
            .and_then(|s| s.strip_prefix("-n"))
        else {
            continue;
        };
        let sessions = match run.sessions {
            Some(n) => n,
            None => suffix
                .parse::<f64>()
                .map_err(|_| format!("run `{}`: unparsable session count", run.label))?,
        };
        let aggregate = run
            .mode("serve-aggregate")
            .ok_or_else(|| format!("run `{}` has no `serve-aggregate` mode", run.label))?;
        let rate = aggregate.blocks_per_sec;
        if !(rate.is_finite() && rate > 0.0) {
            return Err(format!("run `{}` has unusable rate {rate}", run.label));
        }
        let point = CurvePoint {
            sessions,
            label: run.label.clone(),
            rate,
        };
        // Latest append per session count wins — documents accumulate
        // re-measurements under the same labels.
        match points.iter_mut().find(|p| p.sessions == sessions) {
            Some(existing) => *existing = point,
            None => points.push(point),
        }
    }
    if points.len() < 2 {
        return Err(format!(
            "need at least two `{prefix}-nN` session counts to gate a curve, have {}",
            points.len()
        ));
    }
    points.sort_by(|a, b| a.sessions.total_cmp(&b.sessions));
    let (smallest, largest) = (&points[0], &points[points.len() - 1]);
    let retention = largest.rate / smallest.rate;
    Ok(CurveReport {
        prefix: prefix.to_string(),
        floor,
        retention,
        passed: retention >= floor,
        points,
    })
}

/// One workload's warm-start verdict.
#[derive(Clone, PartialEq, Debug)]
pub struct WarmStartVerdict {
    /// The workload's cold/pre-warmed record.
    pub point: WarmStartPoint,
    /// Whether the pre-warmed count is strictly below the cold one.
    pub passed: bool,
}

/// Outcome of gating one `loadgen --warm-start` run.
#[derive(Clone, PartialEq, Debug)]
pub struct WarmStartReport {
    /// The gated run's label.
    pub label: String,
    /// The options the gate ran under.
    pub options: CompareOptions,
    /// Per-workload verdicts, in document order.
    pub verdicts: Vec<WarmStartVerdict>,
    /// Pre-warmed vs cold serving throughput within the run (baseline =
    /// `serve-cold`, current = `serve-prewarmed`), normalized by the
    /// run's own `native` rate under [`CompareOptions::relative`].
    pub throughput: ModeDelta,
}

impl WarmStartReport {
    /// True when every workload pre-warms strictly faster and the
    /// pre-warmed throughput holds within the tolerance.
    pub fn passed(&self) -> bool {
        self.verdicts.iter().all(|v| v.passed) && !self.throughput.regressed
    }

    /// Renders the gate as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let metric = if self.options.relative {
            "rate/native"
        } else {
            "blocks/sec"
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "warm-start gate: run `{}` (blocks to first trace; throughput \
             in {metric}, tolerance {:.0}%)",
            self.label,
            self.options.tolerance * 100.0
        );
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>14}  verdict",
            "workload", "cold", "prewarmed"
        );
        for v in &self.verdicts {
            let _ = writeln!(
                out,
                "{:<12} {:>14.0} {:>14.0}  {}",
                v.point.workload,
                v.point.cold_blocks_to_first_trace,
                v.point.prewarmed_blocks_to_first_trace,
                if v.passed { "ok" } else { "NOT BELOW COLD" }
            );
        }
        let t = &self.throughput;
        let _ = writeln!(
            out,
            "serve-prewarmed vs serve-cold throughput: {:.3} -> {:.3} \
             ({:.3}x, {})",
            t.baseline,
            t.current,
            t.ratio,
            if t.regressed { "REGRESSED" } else { "ok" }
        );
        out
    }
}

/// Gates a committed `loadgen --warm-start` run: every workload's
/// pre-warmed blocks-to-first-trace must sit strictly below its cold
/// number, and the `serve-prewarmed` throughput must hold within the
/// tolerance of `serve-cold`. With [`CompareOptions::relative`] both
/// rates are first normalized by the run's own `native` rate, making
/// the throughput half of the gate portable across hosts (the
/// first-trace counts are deterministic block counts and need no
/// normalization).
///
/// # Errors
///
/// Returns a message when the run records no `warm_start` section, a
/// record carries a non-finite or non-positive cold count, either
/// serving mode is missing or non-finite, or relative mode is requested
/// without a usable `native` rate.
pub fn warm_start_gate(run: &PerfRun, options: CompareOptions) -> Result<WarmStartReport, String> {
    if run.warm_start.is_empty() {
        return Err(format!(
            "run `{}` records no warm_start section; re-measure with \
             `loadgen --warm-start`",
            run.label
        ));
    }
    let norm = if options.relative {
        let native = run.mode("native").ok_or_else(|| {
            format!(
                "run `{}` has no `native` mode; relative mode needs one to normalize by",
                run.label
            )
        })?;
        let rate = native.blocks_per_sec;
        if !(rate.is_finite() && rate > 0.0) {
            return Err(format!(
                "run `{}` has an unusable native rate ({rate}); cannot normalize by it",
                run.label
            ));
        }
        rate
    } else {
        1.0
    };
    let verdicts = run
        .warm_start
        .iter()
        .map(|point| {
            let (cold, warm) = (
                point.cold_blocks_to_first_trace,
                point.prewarmed_blocks_to_first_trace,
            );
            if !(cold.is_finite() && cold > 0.0 && warm.is_finite() && warm >= 0.0) {
                return Err(format!(
                    "workload `{}` in run `{}` has unusable first-trace counts \
                     (cold {cold}, prewarmed {warm})",
                    point.workload, run.label
                ));
            }
            Ok(WarmStartVerdict {
                point: point.clone(),
                passed: warm < cold,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let serving = |mode: &str| -> Result<f64, String> {
        let perf = run
            .mode(mode)
            .ok_or_else(|| format!("run `{}` has no `{mode}` mode", run.label))?;
        let metric = perf.blocks_per_sec / norm;
        if !(metric.is_finite() && metric > 0.0) {
            return Err(format!(
                "run `{}` mode `{mode}` has unusable metric {metric}",
                run.label
            ));
        }
        Ok(metric)
    };
    let (cold_rate, warm_rate) = (serving("serve-cold")?, serving("serve-prewarmed")?);
    let ratio = warm_rate / cold_rate;
    let throughput = ModeDelta {
        mode: "serve-prewarmed".to_string(),
        baseline: cold_rate,
        current: warm_rate,
        ratio,
        guards: None,
        guards_regressed: false,
        regressed: ratio < 1.0 - options.tolerance,
    };
    Ok(WarmStartReport {
        label: run.label.clone(),
        options,
        verdicts,
        throughput,
    })
}

/// Outcome of gating one `loadgen --chaos` run.
#[derive(Clone, PartialEq, Debug)]
pub struct ChaosReport {
    /// The gated run's label.
    pub label: String,
    /// The run's fault-injection record.
    pub section: ChaosSection,
    /// Sessions the run was expected to complete (the run's `sessions`
    /// count when recorded, else the section's own `completed`).
    pub expected_sessions: f64,
}

impl ChaosReport {
    /// True when every session completed bit-identical, nothing leaked,
    /// and the pass visibly absorbed at least one injected fault.
    pub fn passed(&self) -> bool {
        let s = &self.section;
        s.leaked == 0.0
            && s.divergent == 0.0
            && s.completed >= self.expected_sessions
            && s.completed > 0.0
            && s.faults_observed() > 0.0
    }

    /// Renders the gate as text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let s = &self.section;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos gate: run `{}` (fault rate {})",
            self.label, s.rate
        );
        let verdict = |ok: bool| if ok { "ok" } else { "FAILED" };
        let _ = writeln!(
            out,
            "  completed  {:>8} / {:<8} {}",
            s.completed,
            self.expected_sessions,
            verdict(s.completed >= self.expected_sessions && s.completed > 0.0)
        );
        let _ = writeln!(
            out,
            "  leaked     {:>8}            {}",
            s.leaked,
            verdict(s.leaked == 0.0)
        );
        let _ = writeln!(
            out,
            "  divergent  {:>8}            {}",
            s.divergent,
            verdict(s.divergent == 0.0)
        );
        let _ = writeln!(
            out,
            "  absorbed: {} retries, {} reconnects, {} shard restarts \
             ({} sessions re-admitted), {} quarantined publishes  {}",
            s.client_retries,
            s.client_reconnects,
            s.shards_restarted,
            s.sessions_readmitted,
            s.profiles_quarantined,
            verdict(s.faults_observed() > 0.0)
        );
        out
    }
}

/// Gates a committed `loadgen --chaos` run: every driven session must
/// have completed with statistics bit-identical to the native run
/// (`divergent == 0`), the server's session tables must have returned to
/// their pre-run size (`leaked == 0`), and the pass must have visibly
/// absorbed at least one injected fault (retry, reconnect, shard
/// restart, or quarantined publish) — a chaos run that dodged every
/// fault proves nothing.
///
/// # Errors
///
/// Returns a message when the run records no `chaos` section or the
/// recorded fault rate is not in `(0, 1]`.
pub fn chaos_gate(run: &PerfRun) -> Result<ChaosReport, String> {
    let section = run.chaos.clone().ok_or_else(|| {
        format!(
            "run `{}` records no chaos section; re-measure with `loadgen --chaos`",
            run.label
        )
    })?;
    if !(section.rate.is_finite() && section.rate > 0.0 && section.rate <= 1.0) {
        return Err(format!(
            "run `{}` records an unusable chaos rate ({}); expected (0, 1]",
            run.label, section.rate
        ));
    }
    Ok(ChaosReport {
        label: run.label.clone(),
        expected_sessions: run.sessions.unwrap_or(section.completed),
        section,
    })
}

/// One per-block allocation metric's verdict inside an [`AllocReport`].
#[derive(Clone, PartialEq, Debug)]
pub struct AllocDelta {
    /// Metric name (`bytes_per_block` or `allocs_per_block`).
    pub metric: &'static str,
    /// The baseline run's value.
    pub baseline: f64,
    /// The current run's value.
    pub current: f64,
    /// `current / baseline`; above `1 + tolerance` means regressed —
    /// allocation gates invert the throughput convention because more
    /// heap traffic is the failure direction.
    pub ratio: f64,
    /// Whether the increase exceeds the tolerance.
    pub regressed: bool,
}

/// Outcome of gating a serve-path allocation profile.
#[derive(Clone, PartialEq, Debug)]
pub struct AllocReport {
    /// Label of the baseline run.
    pub baseline_label: String,
    /// Label of the current run.
    pub current_label: String,
    /// Allowed fractional per-block increase (0.10 = 10%).
    pub tolerance: f64,
    /// Verdicts for both per-block metrics.
    pub deltas: Vec<AllocDelta>,
    /// The current run's per-stage `(name, bytes, count)` breakdown,
    /// echoed for the report.
    pub stages: Vec<(String, f64, f64)>,
}

impl AllocReport {
    /// True when neither per-block metric grew beyond the tolerance.
    pub fn passed(&self) -> bool {
        self.deltas.iter().all(|d| !d.regressed)
    }

    /// Renders the gate as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "alloc gate: `{}` -> `{}` (serve-path per-block, tolerance +{:.0}%)",
            self.baseline_label,
            self.current_label,
            self.tolerance * 100.0
        );
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>14} {:>8}  verdict",
            "metric", "baseline", "current", "ratio"
        );
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "{:<18} {:>14.4} {:>14.4} {:>7.3}x  {}",
                d.metric,
                d.baseline,
                d.current,
                d.ratio,
                if d.regressed { "REGRESSED" } else { "ok" }
            );
        }
        if !self.stages.is_empty() {
            let _ = writeln!(
                out,
                "{:<18} {:>14} {:>14}  (current run)",
                "stage", "bytes", "allocs"
            );
            for (name, bytes, count) in &self.stages {
                let _ = writeln!(out, "{:<18} {:>14.0} {:>14.0}", name, bytes, count);
            }
        }
        out
    }
}

/// Gates a serve-path allocation profile: the current run's heap bytes
/// and allocator calls per interpreted block must not exceed the
/// baseline's by more than `tolerance` (more allocation is the failure
/// direction, so the gate trips on *increases*). Both counts come from
/// the measuring allocator's per-stage attribution, so they are
/// deterministic for a fixed build and workload set and portable across
/// hosts — no normalization is needed. Gating a run against itself
/// (`baseline == current`) validates that the committed section exists
/// and is well-formed, which is how CI self-checks the document.
///
/// # Errors
///
/// Returns a message when either run records no `alloc` section (the
/// run was measured without a `selfprof-alloc` build) or carries a
/// non-finite or non-positive per-block metric — an alloc-free serve
/// path means the attribution hooks were compiled out, not that the
/// path is perfect.
pub fn alloc_gate(
    baseline: &PerfRun,
    current: &PerfRun,
    tolerance: f64,
) -> Result<AllocReport, String> {
    let section = |run: &PerfRun| -> Result<AllocSection, String> {
        run.alloc.clone().ok_or_else(|| {
            format!(
                "run `{}` records no alloc section; re-measure with a \
                 `--features selfprof-alloc` loadgen build",
                run.label
            )
        })
    };
    let (base, cur) = (section(baseline)?, section(current)?);
    let metric =
        |name: &'static str, pick: &dyn Fn(&AllocSection) -> f64| -> Result<AllocDelta, String> {
            let (b, c) = (pick(&base), pick(&cur));
            if !(b.is_finite() && b > 0.0) {
                return Err(format!(
                    "run `{}` has unusable {name} {b}; a zero serve-path \
                 allocation count means the measuring allocator was not active",
                    baseline.label
                ));
            }
            if !(c.is_finite() && c >= 0.0) {
                return Err(format!("run `{}` has unusable {name} {c}", current.label));
            }
            let ratio = c / b;
            Ok(AllocDelta {
                metric: name,
                baseline: b,
                current: c,
                ratio,
                regressed: ratio > 1.0 + tolerance,
            })
        };
    let deltas = vec![
        metric("bytes_per_block", &|s| s.bytes_per_block)?,
        metric("allocs_per_block", &|s| s.allocs_per_block)?,
    ];
    Ok(AllocReport {
        baseline_label: baseline.label.clone(),
        current_label: current.label.clone(),
        tolerance,
        deltas,
        stages: cur.stages,
    })
}

/// One event kind whose count differs between two telemetry summaries.
#[derive(Clone, PartialEq, Debug)]
pub struct EventDelta {
    /// The event kind tag.
    pub kind: String,
    /// Count in the baseline summary (0 when absent).
    pub baseline: u64,
    /// Count in the current summary (0 when absent).
    pub current: u64,
}

/// Outcome of diffing two `telemetry.json` summaries.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TelemetryDiff {
    /// Event kinds whose counts differ, in tag order.
    pub changed: Vec<EventDelta>,
}

impl TelemetryDiff {
    /// True when every event count matches.
    pub fn passed(&self) -> bool {
        self.changed.is_empty()
    }

    /// Renders the diff as text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.passed() {
            out.push_str("telemetry gate: event counts identical\n");
            return out;
        }
        let _ = writeln!(
            out,
            "telemetry gate: {} event kind(s) differ",
            self.changed.len()
        );
        let _ = writeln!(out, "{:<24} {:>12} {:>12}", "event", "baseline", "current");
        for d in &self.changed {
            let _ = writeln!(out, "{:<24} {:>12} {:>12}", d.kind, d.baseline, d.current);
        }
        out
    }
}

/// Diffs the `events` sections of two `telemetry.json` documents. Wall
/// clock (`timings`) is nondeterministic by contract and not compared.
///
/// # Errors
///
/// Returns a message when either document fails to parse or lacks an
/// `events` object.
pub fn compare_telemetry(baseline: &str, current: &str) -> Result<TelemetryDiff, String> {
    let counts = |text: &str, which: &str| -> Result<Vec<(String, u64)>, String> {
        let value = JsonValue::parse(text).map_err(|e| format!("{which}: {e}"))?;
        let events = value
            .get("events")
            .and_then(|e| e.as_obj())
            .ok_or_else(|| format!("{which}: missing \"events\" object"))?;
        Ok(events
            .iter()
            .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(0.0) as u64))
            .collect())
    };
    let base = counts(baseline, "baseline")?;
    let cur = counts(current, "current")?;
    let mut kinds: Vec<&str> = base
        .iter()
        .chain(cur.iter())
        .map(|(k, _)| k.as_str())
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    let lookup = |set: &[(String, u64)], kind: &str| {
        set.iter().find(|(k, _)| k == kind).map_or(0, |&(_, n)| n)
    };
    let changed = kinds
        .into_iter()
        .filter_map(|kind| {
            let (b, c) = (lookup(&base, kind), lookup(&cur, kind));
            (b != c).then(|| EventDelta {
                kind: kind.to_string(),
                baseline: b,
                current: c,
            })
        })
        .collect();
    Ok(TelemetryDiff { changed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf_doc(label: &str, net_rate: f64) -> String {
        format!(
            r#"{{
  "runs": [
    {{
      "label": "{label}",
      "scale": "small",
      "reps": 3,
      "total_blocks": 1000000,
      "modes": {{
        "native": {{"secs": 1.0, "blocks_per_sec": 1000000}},
        "net": {{"secs": 2.0, "blocks_per_sec": {net_rate}}},
        "dynamo": {{"secs": 4.0, "blocks_per_sec": 250000}}
      }}
    }}
  ]
}}"#
        )
    }

    #[test]
    fn detects_document_kinds() {
        assert_eq!(detect_kind(&perf_doc("a", 1.0)), Ok(DocKind::Perf));
        assert_eq!(
            detect_kind(r#"{"label": "x", "events": {"vm_halt": 1}}"#),
            Ok(DocKind::Telemetry)
        );
        assert!(detect_kind(r#"{"something": 1}"#).is_err());
        assert!(detect_kind("not json").is_err());
    }

    #[test]
    fn parses_perf_runs() {
        let runs = parse_perf_runs(&perf_doc("base", 500000.0)).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "base");
        assert_eq!(runs[0].total_blocks, 1000000.0);
        assert_eq!(runs[0].mode("net").unwrap().blocks_per_sec, 500000.0);
        assert!(runs[0].mode("bogus").is_none());
    }

    #[test]
    fn select_run_by_label_and_default_last() {
        let text = perf_doc("only", 1.0);
        let runs = parse_perf_runs(&text).unwrap();
        assert_eq!(select_run(&runs, None).unwrap().label, "only");
        assert_eq!(select_run(&runs, Some("only")).unwrap().label, "only");
        let err = select_run(&runs, Some("missing")).unwrap_err();
        assert!(err.contains("only"), "{err}");
    }

    #[test]
    fn identical_runs_pass() {
        let runs = parse_perf_runs(&perf_doc("a", 500000.0)).unwrap();
        let report = compare_perf(&runs[0], &runs[0], CompareOptions::default()).unwrap();
        assert!(report.passed());
        assert!(report.deltas.iter().all(|d| (d.ratio - 1.0).abs() < 1e-12));
    }

    #[test]
    fn fifteen_percent_regression_fails_the_default_gate() {
        // The acceptance scenario: a synthetic 15% net-mode throughput loss
        // must trip the default 10% tolerance.
        let base = &parse_perf_runs(&perf_doc("base", 500000.0)).unwrap()[0];
        let cur = &parse_perf_runs(&perf_doc("cur", 425000.0)).unwrap()[0];
        let report = compare_perf(base, cur, CompareOptions::default()).unwrap();
        assert!(!report.passed());
        let regressed: Vec<&str> = report.regressions().map(|d| d.mode.as_str()).collect();
        assert_eq!(regressed, ["net"]);
        // A 20% tolerance absorbs it.
        let loose = compare_perf(
            base,
            cur,
            CompareOptions {
                tolerance: 0.20,
                relative: false,
            },
        )
        .unwrap();
        assert!(loose.passed());
    }

    #[test]
    fn relative_mode_cancels_machine_speed() {
        // The "current" machine is uniformly 2x slower: every absolute rate
        // halves, which the raw gate flags but the relative gate forgives.
        let base = &parse_perf_runs(&perf_doc("base", 500000.0)).unwrap()[0];
        let mut cur = base.clone();
        cur.label = "cur".into();
        for (_, m) in &mut cur.modes {
            m.blocks_per_sec /= 2.0;
            m.secs *= 2.0;
        }
        let raw = compare_perf(base, &cur, CompareOptions::default()).unwrap();
        assert!(!raw.passed());
        let rel = compare_perf(
            base,
            &cur,
            CompareOptions {
                tolerance: DEFAULT_TOLERANCE,
                relative: true,
            },
        )
        .unwrap();
        assert!(rel.passed(), "{}", rel.render());
        // But a genuine 15% net-only loss still trips it.
        let mut slow_net = cur.clone();
        slow_net.modes[1].1.blocks_per_sec *= 0.85;
        let rel = compare_perf(
            base,
            &slow_net,
            CompareOptions {
                tolerance: DEFAULT_TOLERANCE,
                relative: true,
            },
        )
        .unwrap();
        assert!(!rel.passed());
        assert_eq!(
            rel.regressions()
                .map(|d| d.mode.as_str())
                .collect::<Vec<_>>(),
            ["net"]
        );
    }

    #[test]
    fn relative_mode_never_gates_native() {
        // Native is the normalizer — always exactly 1.0 on both sides.
        let base = &parse_perf_runs(&perf_doc("base", 500000.0)).unwrap()[0];
        let report = compare_perf(
            base,
            base,
            CompareOptions {
                tolerance: 0.0,
                relative: true,
            },
        )
        .unwrap();
        let native = report.deltas.iter().find(|d| d.mode == "native").unwrap();
        assert_eq!(native.baseline, 1.0);
        assert!(!native.regressed);
    }

    #[test]
    fn relative_mode_rejects_absent_native() {
        let base = &parse_perf_runs(&perf_doc("base", 500000.0)).unwrap()[0];
        let mut no_native = base.clone();
        no_native.label = "headless".into();
        no_native.modes.retain(|(name, _)| name != "native");
        let options = CompareOptions {
            tolerance: DEFAULT_TOLERANCE,
            relative: true,
        };
        let err = compare_perf(base, &no_native, options).unwrap_err();
        assert!(err.contains("no `native` mode"), "{err}");
        assert!(err.contains("headless"), "{err}");
        // Raw mode is unaffected: the shared modes still compare.
        assert!(compare_perf(base, &no_native, CompareOptions::default()).is_ok());
    }

    #[test]
    fn relative_mode_rejects_zero_or_nonfinite_native() {
        let base = &parse_perf_runs(&perf_doc("base", 500000.0)).unwrap()[0];
        let options = CompareOptions {
            tolerance: DEFAULT_TOLERANCE,
            relative: true,
        };
        for bad in [0.0, f64::NAN, f64::INFINITY, -1.0] {
            let mut cur = base.clone();
            cur.label = "bad".into();
            cur.modes[0].1.blocks_per_sec = bad;
            let err = compare_perf(base, &cur, options).unwrap_err();
            assert!(err.contains("unusable native rate"), "{bad}: {err}");
        }
    }

    #[test]
    fn nonfinite_metrics_error_instead_of_passing_as_nan() {
        // `NaN < 1 - tolerance` is false: without the explicit check a NaN
        // ratio would sail through the gate. It must be a hard error.
        let base = &parse_perf_runs(&perf_doc("base", 500000.0)).unwrap()[0];
        let mut zero_base = base.clone();
        zero_base.modes[1].1.blocks_per_sec = 0.0;
        let err = compare_perf(&zero_base, base, CompareOptions::default()).unwrap_err();
        assert!(err.contains("baseline"), "{err}");
        let mut nan_cur = base.clone();
        nan_cur.modes[1].1.blocks_per_sec = f64::NAN;
        let err = compare_perf(base, &nan_cur, CompareOptions::default()).unwrap_err();
        assert!(err.contains("current"), "{err}");
    }

    #[test]
    fn telemetry_diff_reports_changed_counts() {
        let base = r#"{"label": "a", "events": {"vm_halt": 8, "path_completed": 100}}"#;
        let same = compare_telemetry(base, base).unwrap();
        assert!(same.passed());
        let cur =
            r#"{"label": "b", "events": {"vm_halt": 8, "path_completed": 101, "bailout": 1}}"#;
        let diff = compare_telemetry(base, cur).unwrap();
        assert!(!diff.passed());
        let kinds: Vec<&str> = diff.changed.iter().map(|d| d.kind.as_str()).collect();
        assert_eq!(kinds, ["bailout", "path_completed"]);
        assert_eq!(diff.changed[0].baseline, 0);
        assert_eq!(diff.changed[0].current, 1);
    }

    #[test]
    fn committed_bench_doc_parses_and_self_compares_clean() {
        // The repo's own BENCH_perf.json must stay loadable and must pass
        // the gate against itself — this is what CI's perf-gate step does.
        let text = include_str!("../../../BENCH_perf.json");
        let runs = parse_perf_runs(text).expect("committed BENCH_perf.json parses");
        assert!(!runs.is_empty());
        let last = select_run(&runs, None).unwrap();
        let report = compare_perf(
            last,
            last,
            CompareOptions {
                tolerance: DEFAULT_TOLERANCE,
                relative: true,
            },
        )
        .unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn committed_trace_exec_run_shows_the_linked_speedup() {
        // The point of the trace-execution backend: executing predicted
        // paths as compiled superblocks must beat the simulated dynamo
        // mode by a wide margin. The committed measurement pins it at
        // >= 1.5x blocks/sec.
        let text = include_str!("../../../BENCH_perf.json");
        let runs = parse_perf_runs(text).unwrap();
        let run = select_run(&runs, Some("trace-exec")).expect("trace-exec run is committed");
        let dynamo = run.mode("dynamo").expect("dynamo mode recorded");
        let linked = run
            .mode("dynamo-linked")
            .expect("dynamo-linked mode recorded");
        let ratio = linked.blocks_per_sec / dynamo.blocks_per_sec;
        assert!(
            ratio >= 1.5,
            "dynamo-linked must run >= 1.5x the simulated dynamo mode, got {ratio:.2}x"
        );
    }

    #[test]
    fn committed_trace_opt_run_closes_the_native_gap() {
        // The point of the trace optimizer: fully-optimized linked
        // execution must land within 10% of native block throughput,
        // beat unoptimized linked execution, and never execute more
        // guards than it.
        let text = include_str!("../../../BENCH_perf.json");
        let runs = parse_perf_runs(text).unwrap();
        let run = select_run(&runs, Some("trace-opt")).expect("trace-opt run is committed");
        let native = run.mode("native").expect("native mode recorded");
        let linked = run
            .mode("dynamo-linked")
            .expect("dynamo-linked mode recorded");
        let opt = run
            .mode("dynamo-linked-opt")
            .expect("dynamo-linked-opt mode recorded");
        let vs_native = opt.blocks_per_sec / native.blocks_per_sec;
        assert!(
            vs_native >= 0.9,
            "dynamo-linked-opt must be within 10% of native, got {vs_native:.3}"
        );
        assert!(
            opt.blocks_per_sec > linked.blocks_per_sec,
            "the optimizer must beat unoptimized linked execution"
        );
        let (linked_guards, opt_guards) = (
            linked.guard_execs.expect("linked guard_execs recorded"),
            opt.guard_execs.expect("opt guard_execs recorded"),
        );
        assert!(
            opt_guards <= linked_guards,
            "optimization must not add guard executions: {opt_guards} vs {linked_guards}"
        );
    }

    fn guard_doc(label: &str, opt_guards: u64) -> String {
        format!(
            r#"{{
  "runs": [
    {{
      "label": "{label}",
      "scale": "small",
      "reps": 3,
      "total_blocks": 1000000,
      "modes": {{
        "native": {{"secs": 1.0, "blocks_per_sec": 1000000, "guard_execs": 0}},
        "dynamo-linked": {{"secs": 2.0, "blocks_per_sec": 500000, "guard_execs": 90000}},
        "dynamo-linked-opt": {{"secs": 1.8, "blocks_per_sec": 555555, "guard_execs": {opt_guards}}}
      }}
    }}
  ]
}}"#
        )
    }

    #[test]
    fn guard_exec_counts_parse_and_are_optional() {
        let with = &parse_perf_runs(&guard_doc("g", 30000)).unwrap()[0];
        assert_eq!(
            with.mode("dynamo-linked-opt").unwrap().guard_execs,
            Some(30000.0)
        );
        // Documents predating the field still parse, with no guard gate.
        let without = &parse_perf_runs(&perf_doc("old", 500000.0)).unwrap()[0];
        assert_eq!(without.mode("net").unwrap().guard_execs, None);
        let report = compare_perf(without, with, CompareOptions::default()).unwrap();
        assert!(report.deltas.iter().all(|d| d.guards.is_none()));
    }

    #[test]
    fn guard_exec_increases_trip_the_gate_regardless_of_tolerance() {
        let base = &parse_perf_runs(&guard_doc("base", 30000)).unwrap()[0];
        let same = compare_perf(base, base, CompareOptions::default()).unwrap();
        assert!(same.passed(), "{}", same.render());
        // Throughput identical, guard count up: still a regression, even
        // under an absurdly loose tolerance.
        let worse = &parse_perf_runs(&guard_doc("cur", 30001)).unwrap()[0];
        let report = compare_perf(
            base,
            worse,
            CompareOptions {
                tolerance: 0.99,
                relative: false,
            },
        )
        .unwrap();
        assert!(!report.passed());
        let regressed: Vec<&str> = report.regressions().map(|d| d.mode.as_str()).collect();
        assert_eq!(regressed, ["dynamo-linked-opt"]);
        assert!(report.render().contains("guard execs increased"));
        // Decreases are improvements, never regressions.
        let better = &parse_perf_runs(&guard_doc("cur", 20000)).unwrap()[0];
        let report = compare_perf(base, better, CompareOptions::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    fn serve_doc(label: &str, aggregate_rate: f64) -> String {
        format!(
            r#"{{
  "runs": [
    {{
      "label": "{label}",
      "scale": "small",
      "sessions": 4,
      "shards": 4,
      "seed": 42,
      "total_blocks": 8000000,
      "modes": {{
        "native": {{"secs": 0.25, "blocks_per_sec": 32000000}},
        "serve-single": {{"secs": 0.5, "blocks_per_sec": 16000000}},
        "serve-aggregate": {{"secs": 0.2, "blocks_per_sec": {aggregate_rate}}}
      }}
    }}
  ]
}}"#
        )
    }

    #[test]
    fn serve_aggregate_regressions_trip_the_gate() {
        // loadgen documents gate exactly like perf_baseline ones: a 15%
        // aggregate-throughput loss fails the default 10% tolerance while
        // the untouched modes stay green.
        let base = &parse_perf_runs(&serve_doc("base", 40000000.0)).unwrap()[0];
        let cur = &parse_perf_runs(&serve_doc("cur", 34000000.0)).unwrap()[0];
        let report = compare_perf(base, cur, CompareOptions::default()).unwrap();
        assert!(!report.passed());
        let regressed: Vec<&str> = report.regressions().map(|d| d.mode.as_str()).collect();
        assert_eq!(regressed, ["serve-aggregate"]);
        // Relative mode works too — loadgen always records `native`.
        let rel = compare_perf(
            base,
            cur,
            CompareOptions {
                tolerance: DEFAULT_TOLERANCE,
                relative: true,
            },
        )
        .unwrap();
        assert_eq!(
            rel.regressions()
                .map(|d| d.mode.as_str())
                .collect::<Vec<_>>(),
            ["serve-aggregate"]
        );
    }

    #[test]
    fn serve_and_baseline_runs_compare_over_their_shared_surface() {
        // A loadgen run and a perf_baseline run share only `native`; the
        // gate judges that shared mode instead of erroring out.
        let baseline = &parse_perf_runs(&perf_doc("pipeline", 500000.0)).unwrap()[0];
        let serve = &parse_perf_runs(&serve_doc("serve", 40000000.0)).unwrap()[0];
        let report = compare_perf(baseline, serve, CompareOptions::default()).unwrap();
        let modes: Vec<&str> = report.deltas.iter().map(|d| d.mode.as_str()).collect();
        assert_eq!(modes, ["native"]);
    }

    /// A one-run document with a native normalizer, one extra mode, and
    /// an optional sessions count — building block for trend/curve docs.
    fn run_obj(label: &str, mode: &str, rate: f64, sessions: Option<u32>) -> String {
        let sessions = sessions
            .map(|n| format!("      \"sessions\": {n},\n"))
            .unwrap_or_default();
        format!(
            "    {{\n      \"label\": \"{label}\",\n      \"scale\": \"smoke\",\n\
             {sessions}      \"total_blocks\": 1000000,\n      \"modes\": {{\n        \
             \"native\": {{\"secs\": 1.0, \"blocks_per_sec\": 1000000}},\n        \
             \"{mode}\": {{\"secs\": 2.0, \"blocks_per_sec\": {rate}}}\n      }}\n    }}"
        )
    }

    fn multi_doc(runs: &[String]) -> String {
        format!("{{\n  \"runs\": [\n{}\n  ]\n}}", runs.join(",\n"))
    }

    #[test]
    fn trend_warns_on_cumulative_drift_that_each_step_hides() {
        // Three steps each losing ~7% — every pairwise gate at 10%
        // passes, but first-to-last is a 20% loss the trend must flag.
        let doc = multi_doc(&[
            run_obj("a", "net", 500000.0, None),
            run_obj("b", "net", 465000.0, None),
            run_obj("c", "net", 432000.0, None),
            run_obj("d", "net", 400000.0, None),
        ]);
        let runs = parse_perf_runs(&doc).unwrap();
        for pair in runs.windows(2) {
            let step = compare_perf(&pair[0], &pair[1], CompareOptions::default()).unwrap();
            assert!(step.passed(), "{}", step.render());
        }
        let trend = perf_trend(&runs, DEFAULT_TOLERANCE).unwrap();
        let warned: Vec<&str> = trend.warnings().map(|d| d.mode.as_str()).collect();
        assert_eq!(warned, ["net"]);
        let drift = &trend.drifts[0];
        assert_eq!(drift.samples, 4);
        assert_eq!(
            (drift.first_label.as_str(), drift.last_label.as_str()),
            ("a", "d")
        );
        assert!((drift.ratio - 0.8).abs() < 1e-9, "{}", drift.ratio);
        assert!(trend.render().contains("WARN"), "{}", trend.render());
        // A flat document draws no warnings.
        let flat = parse_perf_runs(&multi_doc(&[
            run_obj("a", "net", 500000.0, None),
            run_obj("b", "net", 500000.0, None),
        ]))
        .unwrap();
        let trend = perf_trend(&flat, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(trend.warnings().count(), 0);
    }

    #[test]
    fn trend_is_native_relative_and_needs_two_runs() {
        // A uniformly 2x-slower second host halves every raw rate; the
        // native-relative trend sees no drift.
        let doc = multi_doc(&[
            run_obj("fast-host", "net", 500000.0, None),
            run_obj("slow-host", "net", 250000.0, None),
        ]);
        let mut runs = parse_perf_runs(&doc).unwrap();
        // Halve the second run's native rate too — the whole host is
        // uniformly 2x slower, so the relative rate is unchanged at 0.5.
        runs[1].modes[0].1.blocks_per_sec = 500000.0;
        let trend = perf_trend(&runs, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(trend.warnings().count(), 0, "{}", trend.render());
        let err = perf_trend(&runs[..1], DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("at least two"), "{err}");
    }

    #[test]
    fn curve_gates_retention_between_smallest_and_largest_scale() {
        let doc = multi_doc(&[
            run_obj("sweep-n100", "serve-aggregate", 1000000.0, Some(100)),
            run_obj("sweep-n1000", "serve-aggregate", 800000.0, Some(1000)),
            run_obj("sweep-n10000", "serve-aggregate", 600000.0, Some(10000)),
            run_obj("other", "serve-aggregate", 1.0, None),
        ]);
        let runs = parse_perf_runs(&doc).unwrap();
        let report = sweep_curve(&runs, "sweep", DEFAULT_CURVE_FLOOR).unwrap();
        assert!(report.passed, "{}", report.render());
        assert_eq!(report.points.len(), 3);
        assert!((report.retention - 0.6).abs() < 1e-9);
        // A tighter floor fails the same curve.
        let strict = sweep_curve(&runs, "sweep", 0.7).unwrap();
        assert!(!strict.passed);
        assert!(strict.render().contains("BELOW FLOOR"));
    }

    #[test]
    fn curve_keeps_the_latest_run_per_session_count() {
        // Documents accumulate: a re-measured point under the same label
        // must supersede the stale one.
        let doc = multi_doc(&[
            run_obj("sweep-n100", "serve-aggregate", 1000000.0, Some(100)),
            run_obj("sweep-n10000", "serve-aggregate", 100000.0, Some(10000)),
            run_obj("sweep-n10000", "serve-aggregate", 900000.0, Some(10000)),
        ]);
        let runs = parse_perf_runs(&doc).unwrap();
        let report = sweep_curve(&runs, "sweep", DEFAULT_CURVE_FLOOR).unwrap();
        assert!(report.passed, "{}", report.render());
        assert_eq!(report.points[1].rate, 900000.0);
    }

    #[test]
    fn curve_rejects_thin_or_malformed_input() {
        let one = parse_perf_runs(&multi_doc(&[run_obj(
            "sweep-n100",
            "serve-aggregate",
            1000000.0,
            Some(100),
        )]))
        .unwrap();
        assert!(sweep_curve(&one, "sweep", 0.5)
            .unwrap_err()
            .contains("at least two"));
        assert!(sweep_curve(&one, "sweep", 0.0)
            .unwrap_err()
            .contains("floor"));
        assert!(sweep_curve(&one, "sweep", 1.5)
            .unwrap_err()
            .contains("floor"));
        // A matching label without serve-aggregate is an error, not a skip.
        let wrong = parse_perf_runs(&multi_doc(&[
            run_obj("sweep-n100", "net", 1.0, Some(100)),
            run_obj("sweep-n1000", "serve-aggregate", 1.0, Some(1000)),
        ]))
        .unwrap();
        assert!(sweep_curve(&wrong, "sweep", 0.5)
            .unwrap_err()
            .contains("serve-aggregate"));
    }

    fn warm_doc(label: &str, li_prewarmed: f64, warm_rate: f64) -> String {
        format!(
            r#"{{
  "runs": [
    {{
      "label": "{label}",
      "scale": "smoke",
      "sessions": 9,
      "shards": 4,
      "seed": 42,
      "total_blocks": 579483,
      "warm_start": {{
        "compress": {{"cold_blocks_to_first_trace": 256, "prewarmed_blocks_to_first_trace": 0}},
        "li": {{"cold_blocks_to_first_trace": 256, "prewarmed_blocks_to_first_trace": {li_prewarmed}}}
      }},
      "modes": {{
        "native": {{"secs": 0.014, "blocks_per_sec": 41000000}},
        "serve-cold": {{"secs": 0.016, "blocks_per_sec": 35000000}},
        "serve-prewarmed": {{"secs": 0.014, "blocks_per_sec": {warm_rate}}}
      }}
    }}
  ]
}}"#
        )
    }

    #[test]
    fn warm_start_records_parse_and_default_empty() {
        let runs = parse_perf_runs(&warm_doc("w", 0.0, 40000000.0)).unwrap();
        assert_eq!(runs[0].warm_start.len(), 2);
        assert_eq!(runs[0].warm_start[0].workload, "compress");
        assert_eq!(runs[0].warm_start[1].cold_blocks_to_first_trace, 256.0);
        assert_eq!(runs[0].warm_start[1].prewarmed_blocks_to_first_trace, 0.0);
        // Documents without the section still parse, with no records.
        let old = parse_perf_runs(&perf_doc("old", 500000.0)).unwrap();
        assert!(old[0].warm_start.is_empty());
    }

    #[test]
    fn warm_start_gate_requires_strictly_fewer_blocks_to_first_trace() {
        let good = &parse_perf_runs(&warm_doc("w", 0.0, 40000000.0)).unwrap()[0];
        let report = warm_start_gate(good, CompareOptions::default()).unwrap();
        assert!(report.passed(), "{}", report.render());
        // Equal counts are not strictly below: the gate must fail.
        let tie = &parse_perf_runs(&warm_doc("w", 256.0, 40000000.0)).unwrap()[0];
        let report = warm_start_gate(tie, CompareOptions::default()).unwrap();
        assert!(!report.passed());
        assert!(
            report.render().contains("NOT BELOW COLD"),
            "{}",
            report.render()
        );
        // And a run without warm-start data cannot be gated at all.
        let old = &parse_perf_runs(&perf_doc("old", 500000.0)).unwrap()[0];
        let err = warm_start_gate(old, CompareOptions::default()).unwrap_err();
        assert!(err.contains("no warm_start section"), "{err}");
    }

    #[test]
    fn warm_start_gate_trips_on_prewarmed_throughput_loss() {
        // Pre-warmed serving 15% under cold fails the default 10%
        // tolerance; first-trace counts alone cannot save the run.
        let slow = &parse_perf_runs(&warm_doc("w", 0.0, 29750000.0)).unwrap()[0];
        let report = warm_start_gate(slow, CompareOptions::default()).unwrap();
        assert!(report.verdicts.iter().all(|v| v.passed));
        assert!(report.throughput.regressed);
        assert!(!report.passed());
        // Relative mode normalizes both serving rates by the same native
        // rate, so the within-run verdict is unchanged.
        let rel = warm_start_gate(
            slow,
            CompareOptions {
                tolerance: DEFAULT_TOLERANCE,
                relative: true,
            },
        )
        .unwrap();
        assert!((rel.throughput.ratio - report.throughput.ratio).abs() < 1e-12);
        assert!(!rel.passed());
    }

    #[test]
    fn warm_start_gate_rejects_malformed_runs() {
        let zero_cold = r#"{
  "runs": [
    {
      "label": "bad", "scale": "smoke", "total_blocks": 1,
      "warm_start": {"li": {"cold_blocks_to_first_trace": 0, "prewarmed_blocks_to_first_trace": 0}},
      "modes": {
        "serve-cold": {"secs": 1.0, "blocks_per_sec": 1000},
        "serve-prewarmed": {"secs": 1.0, "blocks_per_sec": 1000}
      }
    }
  ]
}"#;
        let run = &parse_perf_runs(zero_cold).unwrap()[0];
        let err = warm_start_gate(run, CompareOptions::default()).unwrap_err();
        assert!(err.contains("unusable first-trace counts"), "{err}");
        // A warm-start run missing a serving mode is an error, not a pass.
        let mut no_mode = parse_perf_runs(&warm_doc("w", 0.0, 40000000.0)).unwrap()[0].clone();
        no_mode.modes.retain(|(name, _)| name != "serve-prewarmed");
        let err = warm_start_gate(&no_mode, CompareOptions::default()).unwrap_err();
        assert!(err.contains("serve-prewarmed"), "{err}");
        // Relative mode needs the native normalizer.
        let mut no_native = parse_perf_runs(&warm_doc("w", 0.0, 40000000.0)).unwrap()[0].clone();
        no_native.modes.retain(|(name, _)| name != "native");
        let options = CompareOptions {
            tolerance: DEFAULT_TOLERANCE,
            relative: true,
        };
        let err = warm_start_gate(&no_native, options).unwrap_err();
        assert!(err.contains("no `native` mode"), "{err}");
    }

    #[test]
    fn committed_warm_start_run_prewarms_strictly_faster() {
        // The repo's own BENCH_perf.json carries a `loadgen --warm-start`
        // run: every workload family must reach its first trace in
        // strictly fewer blocks pre-warmed than cold, and the pre-warmed
        // serving throughput must hold within the default tolerance —
        // this is what CI's warmstart-smoke job re-measures.
        let text = include_str!("../../../BENCH_perf.json");
        let runs = parse_perf_runs(text).unwrap();
        let run = select_run(&runs, Some("warmstart")).expect("warmstart run is committed");
        assert!(
            run.warm_start.len() >= 9,
            "warm-start run covers the whole suite, got {}",
            run.warm_start.len()
        );
        let report = warm_start_gate(
            run,
            CompareOptions {
                tolerance: DEFAULT_TOLERANCE,
                relative: true,
            },
        )
        .unwrap();
        assert!(report.passed(), "{}", report.render());
        for v in &report.verdicts {
            assert!(
                v.point.prewarmed_blocks_to_first_trace < v.point.cold_blocks_to_first_trace,
                "{}: prewarmed {} not strictly below cold {}",
                v.point.workload,
                v.point.prewarmed_blocks_to_first_trace,
                v.point.cold_blocks_to_first_trace
            );
        }
    }

    #[test]
    fn committed_document_trends_clean() {
        // The repo's own history must not show cumulative native-relative
        // drift — this is what `bench_compare --trend` gates in CI.
        let text = include_str!("../../../BENCH_perf.json");
        let runs = parse_perf_runs(text).unwrap();
        let trend = perf_trend(&runs, DEFAULT_TOLERANCE).unwrap();
        for warn in trend.warnings() {
            // Aggregate serving throughput legitimately varies with the
            // recording host's core count; everything else must hold.
            assert!(
                warn.mode.starts_with("serve"),
                "unexpected drift: {}",
                trend.render()
            );
        }
    }

    #[test]
    fn committed_serve_run_records_aggregate_throughput() {
        // The repo's own BENCH_perf.json carries a loadgen run labelled
        // `serve` with all three serving modes, usable as a gate baseline
        // (relative mode included — it has the `native` normalizer).
        let text = include_str!("../../../BENCH_perf.json");
        let runs = parse_perf_runs(text).unwrap();
        let run = select_run(&runs, Some("serve")).expect("serve run is committed");
        for mode in ["native", "serve-single", "serve-aggregate"] {
            let perf = run
                .mode(mode)
                .unwrap_or_else(|| panic!("{mode} mode recorded"));
            assert!(
                perf.blocks_per_sec.is_finite() && perf.blocks_per_sec > 0.0,
                "{mode}: unusable rate {}",
                perf.blocks_per_sec
            );
        }
        let report = compare_perf(
            run,
            run,
            CompareOptions {
                tolerance: DEFAULT_TOLERANCE,
                relative: true,
            },
        )
        .unwrap();
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn committed_scale_sweep_curve_holds_the_floor() {
        // The repo's own BENCH_perf.json carries the reactor scale curve
        // (runs `scale-n100` / `scale-n1000` / `scale-n10000`): every
        // point parses with a session count and a peak-RSS record, and
        // throughput retention from the smallest to the largest point
        // clears the default floor — this is what the nightly sweep and
        // `bench_compare --curve` gate against fresh measurements.
        let text = include_str!("../../../BENCH_perf.json");
        let runs = parse_perf_runs(text).unwrap();
        let report =
            sweep_curve(&runs, "scale", DEFAULT_CURVE_FLOOR).expect("committed scale sweep parses");
        assert!(report.passed, "{}", report.render());
        assert!(report.points.len() >= 3, "curve spans at least 3 scales");
        assert_eq!(
            report.points.last().map(|p| p.sessions),
            Some(10_000.0),
            "curve reaches 10K concurrent sessions"
        );
    }

    fn chaos_doc(leaked: u64, divergent: u64, retries: u64, restarts: u64) -> String {
        format!(
            r#"{{
  "runs": [
    {{
      "label": "chaos",
      "scale": "smoke",
      "sessions": 18,
      "shards": 4,
      "seed": 42,
      "total_blocks": 1158966,
      "chaos": {{
        "rate": 0.05,
        "completed": 18,
        "leaked": {leaked},
        "divergent": {divergent},
        "shards_restarted": {restarts},
        "sessions_readmitted": 12,
        "profiles_quarantined": 1,
        "client_retries": {retries},
        "client_reconnects": 0
      }},
      "modes": {{
        "native": {{"secs": 0.02, "blocks_per_sec": 50000000}},
        "serve-chaos": {{"secs": 2.4, "blocks_per_sec": 480000}}
      }}
    }}
  ]
}}"#
        )
    }

    #[test]
    fn chaos_section_parses_and_defaults_absent() {
        let runs = parse_perf_runs(&chaos_doc(0, 0, 100, 3)).unwrap();
        let section = runs[0].chaos.as_ref().expect("chaos section parsed");
        assert_eq!(section.rate, 0.05);
        assert_eq!(section.completed, 18.0);
        assert_eq!(section.client_retries, 100.0);
        assert_eq!(section.faults_observed(), 104.0);
        // Documents without the section still parse, with no record.
        let old = parse_perf_runs(&perf_doc("old", 500000.0)).unwrap();
        assert!(old[0].chaos.is_none());
        // A section missing a counter is an error, not a default.
        let broken = chaos_doc(0, 0, 1, 1).replace("\"leaked\": 0,\n", "");
        let err = parse_perf_runs(&broken).unwrap_err();
        assert!(err.contains("leaked"), "{err}");
    }

    #[test]
    fn chaos_gate_requires_clean_completion_and_observed_faults() {
        let good = &parse_perf_runs(&chaos_doc(0, 0, 100, 3)).unwrap()[0];
        let report = chaos_gate(good).unwrap();
        assert!(report.passed(), "{}", report.render());
        // A leaked session fails the gate.
        let leaky = &parse_perf_runs(&chaos_doc(1, 0, 100, 3)).unwrap()[0];
        assert!(!chaos_gate(leaky).unwrap().passed());
        // A divergent session fails the gate.
        let divergent = &parse_perf_runs(&chaos_doc(0, 2, 100, 3)).unwrap()[0];
        assert!(!chaos_gate(divergent).unwrap().passed());
        // A run that dodged every fault proves nothing; quarantine and
        // readmission counts alone cannot save it here because this doc
        // zeroes retries/restarts only — so rebuild with all zero.
        let calm = chaos_doc(0, 0, 0, 0)
            .replace("\"profiles_quarantined\": 1", "\"profiles_quarantined\": 0");
        let calm = &parse_perf_runs(&calm).unwrap()[0];
        let report = chaos_gate(calm).unwrap();
        assert!(!report.passed(), "{}", report.render());
        // And a run without a chaos section cannot be gated at all.
        let old = &parse_perf_runs(&perf_doc("old", 500000.0)).unwrap()[0];
        let err = chaos_gate(old).unwrap_err();
        assert!(err.contains("no chaos section"), "{err}");
    }

    fn alloc_doc(label: &str, bytes_per_block: f64, allocs_per_block: f64) -> String {
        format!(
            r#"{{
  "runs": [
    {{
      "label": "{label}",
      "scale": "smoke",
      "sessions": 9,
      "shards": 4,
      "seed": 42,
      "total_blocks": 579483,
      "modes": {{
        "native": {{"secs": 0.014, "blocks_per_sec": 41000000}},
        "serve-single": {{"secs": 0.16, "blocks_per_sec": 3600000}},
        "serve-aggregate": {{"secs": 0.06, "blocks_per_sec": 9600000}}
      }},
      "alloc": {{
        "bytes_per_block": {bytes_per_block},
        "allocs_per_block": {allocs_per_block},
        "alloc_bytes": 52000000,
        "alloc_count": 910000,
        "served_blocks": 1158966,
        "stages": {{
          "frame_decode": {{"bytes": 21000000, "count": 400000}},
          "shard_dispatch": {{"bytes": 9000000, "count": 200000}},
          "vm_slice": {{"bytes": 22000000, "count": 310000}}
        }}
      }}
    }}
  ]
}}"#
        )
    }

    #[test]
    fn alloc_section_parses_and_defaults_absent() {
        let runs = parse_perf_runs(&alloc_doc("a", 44.87, 0.785)).unwrap();
        let section = runs[0].alloc.as_ref().expect("alloc section parsed");
        assert_eq!(section.bytes_per_block, 44.87);
        assert_eq!(section.allocs_per_block, 0.785);
        assert_eq!(section.served_blocks, 1158966.0);
        assert_eq!(section.stages.len(), 3);
        assert_eq!(section.stages[0].0, "frame_decode");
        assert_eq!(section.stages[0].1, 21000000.0);
        // Documents without the section still parse, with no record.
        let old = parse_perf_runs(&perf_doc("old", 500000.0)).unwrap();
        assert!(old[0].alloc.is_none());
        // A section missing a per-block ratio is an error, not a default.
        let broken = alloc_doc("a", 1.0, 1.0).replace("\"allocs_per_block\": 1,\n", "");
        let err = parse_perf_runs(&broken).unwrap_err();
        assert!(err.contains("allocs_per_block"), "{err}");
    }

    #[test]
    fn alloc_gate_trips_on_per_block_increases_only() {
        let base = &parse_perf_runs(&alloc_doc("base", 100.0, 1.0)).unwrap()[0];
        // Self-comparison validates the committed section and passes.
        let same = alloc_gate(base, base, DEFAULT_TOLERANCE).unwrap();
        assert!(same.passed(), "{}", same.render());
        // A 15% bytes-per-block increase fails the default 10% tolerance.
        let fat = &parse_perf_runs(&alloc_doc("fat", 115.0, 1.0)).unwrap()[0];
        let report = alloc_gate(base, fat, DEFAULT_TOLERANCE).unwrap();
        assert!(!report.passed());
        let regressed: Vec<&str> = report
            .deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.metric)
            .collect();
        assert_eq!(regressed, ["bytes_per_block"]);
        assert!(report.render().contains("REGRESSED"), "{}", report.render());
        // So does a 15% allocation-count increase at flat bytes.
        let chatty = &parse_perf_runs(&alloc_doc("chatty", 100.0, 1.15)).unwrap()[0];
        assert!(!alloc_gate(base, chatty, DEFAULT_TOLERANCE)
            .unwrap()
            .passed());
        // Decreases are improvements — a near-alloc-free current run passes.
        let lean = &parse_perf_runs(&alloc_doc("lean", 1.0, 0.01)).unwrap()[0];
        assert!(alloc_gate(base, lean, DEFAULT_TOLERANCE).unwrap().passed());
    }

    #[test]
    fn alloc_gate_rejects_missing_or_hollow_sections() {
        let base = &parse_perf_runs(&alloc_doc("base", 100.0, 1.0)).unwrap()[0];
        // A run measured without the measuring allocator cannot be gated.
        let old = &parse_perf_runs(&perf_doc("old", 500000.0)).unwrap()[0];
        let err = alloc_gate(base, old, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("no alloc section"), "{err}");
        let err = alloc_gate(old, base, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("no alloc section"), "{err}");
        // A zero baseline means the hooks were compiled out, not perfection.
        let hollow = &parse_perf_runs(&alloc_doc("hollow", 0.0, 0.0)).unwrap()[0];
        let err = alloc_gate(hollow, base, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("measuring allocator"), "{err}");
    }

    #[test]
    fn committed_selfprof_run_gates_its_own_alloc_profile() {
        // The repo's own BENCH_perf.json carries a `selfprof` run recorded
        // under a selfprof-alloc build: its serve-path allocation profile
        // must exist, be well-formed, and pass the gate against itself —
        // this is what CI's selfprof-smoke job re-measures.
        let text = include_str!("../../../BENCH_perf.json");
        let runs = parse_perf_runs(text).unwrap();
        let run = select_run(&runs, Some("selfprof")).expect("selfprof run is committed");
        let report = alloc_gate(run, run, DEFAULT_TOLERANCE).unwrap();
        assert!(report.passed(), "{}", report.render());
        let section = run.alloc.as_ref().unwrap();
        assert!(
            !section.stages.is_empty(),
            "committed alloc profile must break down by stage"
        );
        assert!(section.served_blocks > 0.0);
    }

    #[test]
    fn committed_chaos_run_absorbed_faults_cleanly() {
        // The repo's own BENCH_perf.json carries a `loadgen --chaos` run:
        // every session completed bit-identical under injected wire and
        // shard faults, nothing leaked, and the pass visibly absorbed
        // faults — this is what CI's chaos-smoke job re-measures.
        let text = include_str!("../../../BENCH_perf.json");
        let runs = parse_perf_runs(text).unwrap();
        let run = select_run(&runs, Some("chaos")).expect("chaos run is committed");
        let report = chaos_gate(run).unwrap();
        assert!(report.passed(), "{}", report.render());
        let section = run.chaos.as_ref().unwrap();
        assert!(
            section.shards_restarted > 0.0,
            "committed chaos run must exercise shard supervision"
        );
        assert!(
            section.profiles_quarantined > 0.0,
            "committed chaos run must exercise profile quarantine"
        );
    }
}
