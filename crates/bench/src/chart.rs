//! Terminal scatter charts for the figure binaries.
//!
//! The paper's figures are line plots of rate-vs-profiled-flow; for a
//! terminal reproduction an ASCII scatter is enough to see the shapes
//! (descending hit rate, faster-descending noise, NET ≈ PathProfile in
//! the practical corner).

/// Renders series of `(x, y)` points (both in percent, 0..=100) into an
/// ASCII chart. Each series is drawn with its own glyph; later series
/// overwrite earlier ones where they collide.
pub fn ascii_chart(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(char, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    let width = width.max(20);
    let height = height.max(8);
    let mut grid = vec![vec![' '; width]; height];
    for &(glyph, points) in series {
        for &(x, y) in points {
            let cx = ((x.clamp(0.0, 100.0) / 100.0) * (width - 1) as f64).round() as usize;
            let cy = ((y.clamp(0.0, 100.0) / 100.0) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_tick = if i == 0 {
            "100%".to_string()
        } else if i == height - 1 {
            "  0%".to_string()
        } else if i == height / 2 {
            " 50%".to_string()
        } else {
            "    ".to_string()
        };
        out.push_str(&y_tick);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("    +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "     0%{}100%  x: {x_label}, y: {y_label}\n",
        " ".repeat(width.saturating_sub(9)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_at_corners() {
        let pts = [(0.0, 0.0), (100.0, 100.0)];
        let s = ascii_chart("t", "x", "y", &[('*', &pts)], 40, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "t");
        // Top row contains the (100,100) point at the right edge.
        assert!(lines[1].ends_with('*'));
        // Bottom data row contains the (0,0) point at the left edge.
        assert_eq!(lines[10].chars().nth(5), Some('*'));
        assert!(s.contains("x: x, y: y"));
    }

    #[test]
    fn later_series_overwrite() {
        let a = [(50.0, 50.0)];
        let b = [(50.0, 50.0)];
        let s = ascii_chart("t", "x", "y", &[('a', &a), ('b', &b)], 21, 9);
        assert!(s.contains('b'));
        assert!(!s.contains('a') || s.lines().next() == Some("t"));
    }

    #[test]
    fn clamps_out_of_range() {
        let pts = [(-10.0, 150.0)];
        let s = ascii_chart("t", "x", "y", &[('*', &pts)], 30, 9);
        assert!(s.contains('*'));
    }
}
