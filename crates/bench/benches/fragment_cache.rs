//! Criterion: fragment-cache operations (install, lookup, divert) and a
//! whole Dynamo engine run — the concrete costs behind Figure 5's
//! transitions and build accounting.
//!
//! ```text
//! cargo bench -p hotpath-bench --bench fragment_cache
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hotpath_dynamo::{run_dynamo, DynamoConfig, FragmentCache, Scheme};
use hotpath_ir::BlockId;
use hotpath_workloads::{build, Scale, WorkloadName};

fn bench_cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("fragment_cache");

    group.bench_function("install_1000", |b| {
        b.iter_batched(
            FragmentCache::new,
            |mut cache| {
                for i in 0..1000u32 {
                    let head = i % 97;
                    let blocks = [head, head + 100, head + 200, i + 300];
                    let _ = cache.install(&blocks, 16);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });

    let mut cache = FragmentCache::new();
    for i in 0..1000u32 {
        let head = i % 97;
        let _ = cache.install(&[head, head + 100, head + 200, i + 300], 16);
    }
    group.throughput(Throughput::Elements(1000));
    group.bench_function("entry_lookup_1000", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..1000u32 {
                if cache.entry_for(BlockId::new(i % 200)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("divert_1000", |b| {
        let id = cache.entry_for(BlockId::new(0)).expect("installed");
        b.iter(|| {
            let mut found = 0usize;
            for i in 0..1000u32 {
                if cache.divert(id, 3, 300 + i).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let w = build(WorkloadName::Deltablue, Scale::Smoke);
    let mut group = c.benchmark_group("dynamo_engine");
    // Whole-engine runs are ~0.1 s each; a small sample keeps `cargo
    // bench --workspace` minutes-scale.
    group.sample_size(10);
    group.bench_function("deltablue_smoke_net50", |b| {
        b.iter(|| run_dynamo(&w.program, &DynamoConfig::new(Scheme::Net, 50)).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_cache_ops, bench_engine);
criterion_main!(benches);
