//! Criterion: the *concrete* per-operation costs the paper's overhead
//! argument is about — what one path execution costs each profiling
//! scheme, and what one block event costs each profiler.
//!
//! ```text
//! cargo bench -p hotpath-bench --bench profiling_overhead
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hotpath_core::{HotPathPredictor, NetPredictor, PathProfilePredictor};
use hotpath_profiles::{
    BallLarusProfiler, KBoundedProfiler, PathExtractor, StreamingSink,
};
use hotpath_vm::{TraceRecorder, Vm};
use hotpath_workloads::{build, Scale, WorkloadName};

fn bench_predictors(c: &mut Criterion) {
    // Record m88ksim once; replay its path stream through each predictor.
    let w = build(WorkloadName::M88ksim, Scale::Smoke);
    let mut ex = PathExtractor::new(StreamingSink::new());
    Vm::new(&w.program).run(&mut ex).expect("runs");
    let (sink, table) = ex.into_parts();
    let stream = sink.into_stream();
    let execs: Vec<_> = (0..stream.len())
        .map(|i| stream.execution(i, &table))
        .collect();

    let mut group = c.benchmark_group("predictor_observe");
    group.sample_size(30);
    group.throughput(Throughput::Elements(execs.len() as u64));
    group.bench_function("net", |b| {
        b.iter_batched(
            || NetPredictor::new(50),
            |mut p| {
                for e in &execs {
                    let _ = p.observe(e);
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("path_profile", |b| {
        b.iter_batched(
            || PathProfilePredictor::new(50),
            |mut p| {
                for e in &execs {
                    let _ = p.observe(e);
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_profilers(c: &mut Criterion) {
    // Record the raw block trace once; replay it through each profiler.
    let w = build(WorkloadName::Compress, Scale::Smoke);
    let mut rec = TraceRecorder::new();
    Vm::new(&w.program).run(&mut rec).expect("runs");
    let trace = rec.into_trace();

    let mut group = c.benchmark_group("profiler_per_block");
    group.sample_size(20);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("path_extractor_bit_tracing", |b| {
        b.iter_batched(
            || PathExtractor::new(StreamingSink::new()),
            |mut p| {
                trace.replay(&mut p);
                p
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("ball_larus", |b| {
        b.iter_batched(
            || BallLarusProfiler::new(&w.program).expect("reducible"),
            |mut p| {
                trace.replay(&mut p);
                p
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("k_bounded_k4", |b| {
        b.iter_batched(
            || KBoundedProfiler::new(4),
            |mut p| {
                trace.replay(&mut p);
                p
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_predictors, bench_profilers);
criterion_main!(benches);
