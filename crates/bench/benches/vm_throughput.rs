//! Criterion: raw interpreter throughput (blocks and instructions per
//! second), with and without observers — the substrate cost every
//! experiment divides out.
//!
//! ```text
//! cargo bench -p hotpath-bench --bench vm_throughput
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hotpath_profiles::{PathExtractor, StreamingSink};
use hotpath_vm::{CountingObserver, NullObserver, Vm};
use hotpath_workloads::synthetic::{build, SyntheticSpec};

fn bench_vm(c: &mut Criterion) {
    let program = build(&SyntheticSpec {
        trips: 20_000,
        branches: 8,
        bias_percent: 90,
        seed: 11,
    });
    // Measure one run's block count for throughput accounting.
    let blocks = {
        let mut counter = CountingObserver::default();
        Vm::new(&program).run(&mut counter).expect("runs");
        counter.blocks
    };

    let mut group = c.benchmark_group("vm_run");
    group.sample_size(30);
    group.throughput(Throughput::Elements(blocks));
    group.bench_function("null_observer", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program);
            vm.run(&mut NullObserver).expect("runs")
        })
    });
    group.bench_function("counting_observer", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program);
            vm.run(&mut CountingObserver::default()).expect("runs")
        })
    });
    group.bench_function("path_extractor", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program);
            let mut ex = PathExtractor::new(StreamingSink::new());
            vm.run(&mut ex).expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
