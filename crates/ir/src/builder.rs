//! Ergonomic construction of [`Program`]s.
//!
//! [`FunctionBuilder`] emits straight-line instructions into a *current*
//! block and finishes blocks with terminator methods ([`jump`], [`branch`],
//! [`switch`], [`call`], [`ret`], [`halt`]). Blocks are write-once: create
//! them with [`new_block`], fill them after [`switch_to`]. The
//! `hotpath-workloads` crate builds all nine benchmark programs with this
//! API.
//!
//! [`jump`]: FunctionBuilder::jump
//! [`branch`]: FunctionBuilder::branch
//! [`switch`]: FunctionBuilder::switch
//! [`call`]: FunctionBuilder::call
//! [`ret`]: FunctionBuilder::ret
//! [`halt`]: FunctionBuilder::halt
//! [`new_block`]: FunctionBuilder::new_block
//! [`switch_to`]: FunctionBuilder::switch_to

use std::collections::HashMap;

use crate::error::IrError;
use crate::ids::{FuncId, GlobalReg, LocalBlockId, Reg};
use crate::inst::{BinOp, CmpOp, Inst, UnOp};
use crate::program::{BasicBlock, Function, Program, Terminator};
use crate::validate::validate;

/// Incrementally builds one [`Function`].
///
/// The entry block (block 0) is created and selected by [`FunctionBuilder::new`].
///
/// # Panics
///
/// Builder misuse — emitting with no current block, switching to a finished
/// block, or terminating twice — panics with a descriptive message; these
/// are programming errors in the embedding code, not runtime conditions.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    finished: Vec<Option<BasicBlock>>,
    current: Option<LocalBlockId>,
    pending: Vec<Inst>,
    next_reg: u16,
}

impl FunctionBuilder {
    /// Starts a function; creates the entry block and selects it.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            name: name.into(),
            finished: vec![None],
            current: Some(LocalBlockId::new(0)),
            pending: Vec::new(),
            next_reg: 0,
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Allocates a fresh register in this function's frame.
    pub fn reg(&mut self) -> Reg {
        let r = Reg::new(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("function uses more than 65535 registers");
        r
    }

    /// Creates a new, empty, unselected block and returns its id.
    pub fn new_block(&mut self) -> LocalBlockId {
        let id = LocalBlockId::new(self.finished.len() as u32);
        self.finished.push(None);
        id
    }

    /// Selects `block` as the current emission target.
    ///
    /// # Panics
    ///
    /// Panics if another block is still open or if `block` already has a
    /// body.
    pub fn switch_to(&mut self, block: LocalBlockId) {
        assert!(
            self.current.is_none(),
            "switch_to({block}) while block {} is still open in `{}`",
            self.current.expect("checked"),
            self.name
        );
        assert!(
            self.finished[block.index()].is_none(),
            "switch_to({block}): block already finished in `{}`",
            self.name
        );
        self.current = Some(block);
    }

    /// The block currently being emitted into, if any.
    pub fn current_block(&self) -> Option<LocalBlockId> {
        self.current
    }

    /// Appends a raw instruction to the current block.
    ///
    /// # Panics
    ///
    /// Panics if no block is selected.
    pub fn emit(&mut self, inst: Inst) {
        assert!(
            self.current.is_some(),
            "emit with no open block in `{}`",
            self.name
        );
        self.pending.push(inst);
    }

    // ---- straight-line convenience emitters ------------------------------

    /// `dst = value`
    pub fn const_(&mut self, dst: Reg, value: i64) {
        self.emit(Inst::Const { dst, value });
    }

    /// Allocates a register holding `value`.
    pub fn imm(&mut self, value: i64) -> Reg {
        let dst = self.reg();
        self.const_(dst, value);
        dst
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(Inst::Mov { dst, src });
    }

    /// `dst = lhs op rhs`
    pub fn bin(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: Reg) {
        self.emit(Inst::Bin { op, dst, lhs, rhs });
    }

    /// `dst = lhs op imm`
    pub fn bin_imm(&mut self, op: BinOp, dst: Reg, lhs: Reg, imm: i64) {
        self.emit(Inst::BinImm { op, dst, lhs, imm });
    }

    /// `dst = op src`
    pub fn un(&mut self, op: UnOp, dst: Reg, src: Reg) {
        self.emit(Inst::Un { op, dst, src });
    }

    /// `dst = lhs + rhs`
    pub fn add(&mut self, dst: Reg, lhs: Reg, rhs: Reg) {
        self.bin(BinOp::Add, dst, lhs, rhs);
    }

    /// `dst = lhs + imm`
    pub fn add_imm(&mut self, dst: Reg, lhs: Reg, imm: i64) {
        self.bin_imm(BinOp::Add, dst, lhs, imm);
    }

    /// `dst = lhs - rhs`
    pub fn sub(&mut self, dst: Reg, lhs: Reg, rhs: Reg) {
        self.bin(BinOp::Sub, dst, lhs, rhs);
    }

    /// `dst = lhs * rhs`
    pub fn mul(&mut self, dst: Reg, lhs: Reg, rhs: Reg) {
        self.bin(BinOp::Mul, dst, lhs, rhs);
    }

    /// `dst = lhs * imm`
    pub fn mul_imm(&mut self, dst: Reg, lhs: Reg, imm: i64) {
        self.bin_imm(BinOp::Mul, dst, lhs, imm);
    }

    /// `dst = lhs % imm`
    pub fn rem_imm(&mut self, dst: Reg, lhs: Reg, imm: i64) {
        self.bin_imm(BinOp::Rem, dst, lhs, imm);
    }

    /// `dst = lhs & imm`
    pub fn and_imm(&mut self, dst: Reg, lhs: Reg, imm: i64) {
        self.bin_imm(BinOp::And, dst, lhs, imm);
    }

    /// `dst = lhs ^ rhs`
    pub fn xor(&mut self, dst: Reg, lhs: Reg, rhs: Reg) {
        self.bin(BinOp::Xor, dst, lhs, rhs);
    }

    /// `dst = lhs >> imm` (arithmetic)
    pub fn shr_imm(&mut self, dst: Reg, lhs: Reg, imm: i64) {
        self.bin_imm(BinOp::Shr, dst, lhs, imm);
    }

    /// `dst = lhs << imm`
    pub fn shl_imm(&mut self, dst: Reg, lhs: Reg, imm: i64) {
        self.bin_imm(BinOp::Shl, dst, lhs, imm);
    }

    /// Allocates a register with `(lhs op rhs) ? 1 : 0`.
    pub fn cmp(&mut self, op: CmpOp, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Cmp { op, dst, lhs, rhs });
        dst
    }

    /// Allocates a register with `(lhs op imm) ? 1 : 0`.
    pub fn cmp_imm(&mut self, op: CmpOp, lhs: Reg, imm: i64) -> Reg {
        let dst = self.reg();
        self.emit(Inst::CmpImm { op, dst, lhs, imm });
        dst
    }

    /// `dst = memory[addr + offset]`
    pub fn load(&mut self, dst: Reg, addr: Reg, offset: i64) {
        self.emit(Inst::Load { dst, addr, offset });
    }

    /// `memory[addr + offset] = src`
    pub fn store(&mut self, src: Reg, addr: Reg, offset: i64) {
        self.emit(Inst::Store { src, addr, offset });
    }

    /// `dst = globals[g]`
    pub fn get_global(&mut self, dst: Reg, g: GlobalReg) {
        self.emit(Inst::GetGlobal { dst, global: g });
    }

    /// `globals[g] = src`
    pub fn set_global(&mut self, g: GlobalReg, src: Reg) {
        self.emit(Inst::SetGlobal { src, global: g });
    }

    // ---- terminators ------------------------------------------------------

    fn finish_current(&mut self, terminator: Terminator) {
        let cur = self
            .current
            .take()
            .unwrap_or_else(|| panic!("terminator with no open block in `{}`", self.name));
        let insts = std::mem::take(&mut self.pending);
        self.finished[cur.index()] = Some(BasicBlock::new(insts, terminator));
    }

    /// Ends the current block with an unconditional jump.
    pub fn jump(&mut self, target: LocalBlockId) {
        self.finish_current(Terminator::Jump(target));
    }

    /// Ends the current block with a conditional branch (`cond != 0` takes
    /// the first target).
    pub fn branch(&mut self, cond: Reg, taken: LocalBlockId, fallthrough: LocalBlockId) {
        self.finish_current(Terminator::Branch {
            cond,
            taken,
            fallthrough,
        });
    }

    /// Ends the current block with an indirect branch through a jump table.
    pub fn switch(&mut self, index: Reg, targets: Vec<LocalBlockId>, default: LocalBlockId) {
        self.finish_current(Terminator::Switch {
            index,
            targets,
            default,
        });
    }

    /// Ends the current block with a call; execution resumes at `ret_to`.
    pub fn call(&mut self, callee: FuncId, ret_to: LocalBlockId) {
        self.finish_current(Terminator::Call { callee, ret_to });
    }

    /// Ends the current block with a return.
    pub fn ret(&mut self) {
        self.finish_current(Terminator::Return);
    }

    /// Ends the current block with a halt.
    pub fn halt(&mut self) {
        self.finish_current(Terminator::Halt);
    }

    /// Finalizes the function.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnfinishedBlock`] if any created block was never
    /// given a body.
    pub fn finish(self) -> Result<Function, IrError> {
        assert!(
            self.current.is_none(),
            "finish() while block {} is still open in `{}`",
            self.current.expect("checked"),
            self.name
        );
        let mut blocks = Vec::with_capacity(self.finished.len());
        for (i, b) in self.finished.into_iter().enumerate() {
            match b {
                Some(b) => blocks.push(b),
                None => {
                    return Err(IrError::UnfinishedBlock {
                        function: self.name,
                        block: i,
                    })
                }
            }
        }
        Ok(Function {
            name: self.name,
            blocks,
            num_regs: self.next_reg,
        })
    }
}

/// Incrementally builds a [`Program`] out of functions.
///
/// Functions that call each other can be pre-declared with
/// [`ProgramBuilder::declare`] to obtain their [`FuncId`] before their body
/// exists.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    slots: Vec<Option<Function>>,
    names: HashMap<String, FuncId>,
    entry: Option<FuncId>,
    memory_words: usize,
    data: Vec<(usize, i64)>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a function name, reserving its [`FuncId`] so other functions
    /// can call it before it is defined. Declaring the same name twice
    /// returns the same id.
    pub fn declare(&mut self, name: impl Into<String>) -> FuncId {
        let name = name.into();
        if let Some(&id) = self.names.get(&name) {
            return id;
        }
        let id = FuncId::new(self.slots.len() as u32);
        self.slots.push(None);
        self.names.insert(name, id);
        id
    }

    /// Finalizes `fb` and installs it, either into its declared slot or as a
    /// new function. Returns its [`FuncId`].
    ///
    /// # Errors
    ///
    /// Propagates [`FunctionBuilder::finish`] errors.
    pub fn add_function(&mut self, fb: FunctionBuilder) -> Result<FuncId, IrError> {
        let func = fb.finish()?;
        let id = self.declare(func.name.clone());
        self.slots[id.index()] = Some(func);
        Ok(id)
    }

    /// Sets the entry function. Defaults to the function named `main`, or
    /// the first function if no `main` exists.
    pub fn set_entry(&mut self, entry: FuncId) -> &mut Self {
        self.entry = Some(entry);
        self
    }

    /// Sets the data-memory size in 64-bit words.
    pub fn memory_words(&mut self, words: usize) -> &mut Self {
        self.memory_words = words;
        self
    }

    /// Adds an initial-memory word.
    pub fn datum(&mut self, address: usize, value: i64) -> &mut Self {
        self.data.push((address, value));
        self
    }

    /// Validates and returns the program.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] if a declared function was never defined, the
    /// program is empty, or validation fails (bad targets, bad registers,
    /// out-of-range data, missing entry).
    pub fn finish(self) -> Result<Program, IrError> {
        if self.slots.is_empty() {
            return Err(IrError::NoFunctions);
        }
        let mut functions = Vec::with_capacity(self.slots.len());
        for (i, slot) in self.slots.into_iter().enumerate() {
            match slot {
                Some(f) => functions.push(f),
                None => {
                    let name = self
                        .names
                        .iter()
                        .find(|(_, id)| id.index() == i)
                        .map(|(n, _)| n.clone())
                        .unwrap_or_else(|| format!("fn{i}"));
                    return Err(IrError::EmptyFunction { function: name });
                }
            }
        }
        let entry = match self.entry {
            Some(e) => e,
            None => functions
                .iter()
                .position(|f| f.name == "main")
                .map(|i| FuncId::new(i as u32))
                .unwrap_or(FuncId::new(0)),
        };
        let program = Program {
            functions,
            entry,
            memory_words: self.memory_words,
            data: self.data,
        };
        validate(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counting_loop() {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 5);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();

        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].blocks.len(), 4);
        assert_eq!(p.entry, FuncId::new(0));
    }

    #[test]
    fn declare_before_define() {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper");

        let mut main = FunctionBuilder::new("main");
        let after = main.new_block();
        main.call(helper, after);
        main.switch_to(after);
        main.halt();
        pb.add_function(main).unwrap();

        let mut h = FunctionBuilder::new("helper");
        h.ret();
        pb.add_function(h).unwrap();

        let p = pb.finish().unwrap();
        assert_eq!(p.find_function("helper"), Some(helper));
        // Entry defaults to `main` even though helper was declared first.
        assert_eq!(p.function(p.entry).name, "main");
    }

    #[test]
    fn undeclared_function_errors() {
        let mut pb = ProgramBuilder::new();
        pb.declare("ghost");
        let err = pb.finish().unwrap_err();
        assert_eq!(
            err,
            IrError::EmptyFunction {
                function: "ghost".into()
            }
        );
    }

    #[test]
    fn unfinished_block_errors() {
        let mut fb = FunctionBuilder::new("f");
        let dangling = fb.new_block();
        fb.jump(dangling);
        // `dangling` never gets a body.
        let err = fb.finish().unwrap_err();
        assert_eq!(
            err,
            IrError::UnfinishedBlock {
                function: "f".into(),
                block: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn switch_while_open_panics() {
        let mut fb = FunctionBuilder::new("f");
        let b = fb.new_block();
        fb.switch_to(b);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn switch_to_finished_panics() {
        let mut fb = FunctionBuilder::new("f");
        let b = fb.new_block();
        fb.jump(b);
        fb.switch_to(b);
        fb.halt();
        fb.switch_to(b);
    }

    #[test]
    #[should_panic(expected = "no open block")]
    fn emit_without_block_panics() {
        let mut fb = FunctionBuilder::new("f");
        fb.halt();
        fb.const_(Reg::new(0), 1);
    }

    #[test]
    fn imm_allocates_register() {
        let mut fb = FunctionBuilder::new("f");
        let a = fb.imm(42);
        let b = fb.imm(43);
        assert_ne!(a, b);
        fb.halt();
        let f = fb.finish().unwrap();
        assert_eq!(f.num_regs, 2);
    }

    #[test]
    fn memory_and_data() {
        let mut fb = FunctionBuilder::new("main");
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.memory_words(8).datum(3, 99);
        let p = pb.finish().unwrap();
        assert_eq!(p.memory_words, 8);
        assert_eq!(p.data, vec![(3, 99)]);
    }

    #[test]
    fn data_out_of_range_errors() {
        let mut fb = FunctionBuilder::new("main");
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.memory_words(2).datum(5, 1);
        assert!(matches!(
            pb.finish().unwrap_err(),
            IrError::BadDataAddress { address: 5, .. }
        ));
    }
}
