//! Virtual instruction set and control-flow graphs for the hot-path
//! prediction reproduction.
//!
//! This crate provides the *program substrate* that replaces the PA-RISC
//! binaries used in Duesterwald & Bala, "Software Profiling for Hot Path
//! Prediction: Less is More" (ASPLOS 2000). It defines:
//!
//! * a small register-machine instruction set ([`Inst`]) with explicit
//!   control flow ([`Terminator`]): conditional branches, indirect branches
//!   (switches), calls, and returns;
//! * [`Program`]s made of [`Function`]s made of [`BasicBlock`]s;
//! * a deterministic address [`Layout`] that makes the notion of a
//!   *backward branch* — the anchor of the paper's path definition —
//!   well-defined, exactly as it is on a real binary;
//! * CFG analyses (reverse postorder, dominators, natural loops) in
//!   [`mod@cfg`] and [`loops`];
//! * the Ball–Larus acyclic path numbering with spanning-tree instrumentation
//!   placement in [`ball_larus`];
//! * an ergonomic [`builder`] used by the `hotpath-workloads` crate to author
//!   benchmark programs, and a seeded random structured-program generator in
//!   [`gen`] used by property tests.
//!
//! # Example
//!
//! Build a program that sums the first ten integers and lay it out:
//!
//! ```
//! use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
//! use hotpath_ir::{CmpOp, Layout};
//!
//! let mut fb = FunctionBuilder::new("main");
//! let (i, sum) = (fb.reg(), fb.reg());
//! let header = fb.new_block();
//! let body = fb.new_block();
//! let exit = fb.new_block();
//!
//! fb.const_(i, 0);
//! fb.const_(sum, 0);
//! fb.jump(header);
//!
//! fb.switch_to(header);
//! let cond = fb.cmp_imm(CmpOp::Lt, i, 10);
//! fb.branch(cond, body, exit);
//!
//! fb.switch_to(body);
//! fb.add(sum, sum, i);
//! fb.add_imm(i, i, 1);
//! fb.jump(header); // backward branch: loop latch
//!
//! fb.switch_to(exit);
//! fb.halt();
//!
//! let mut pb = ProgramBuilder::new();
//! pb.add_function(fb);
//! let program = pb.finish()?;
//! let layout = Layout::new(&program);
//! assert!(layout.block_count() >= 4);
//! # Ok::<(), hotpath_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ball_larus;
pub mod builder;
pub mod cfg;
pub mod dense;
mod error;
pub mod fasthash;
pub mod gen;
mod ids;
mod inst;
mod layout;
pub mod loops;
pub mod parse;
pub mod pretty;
mod program;
pub mod rng;
mod validate;

pub use error::IrError;
pub use ids::{BlockId, FuncId, GlobalReg, LocalBlockId, Reg};
pub use inst::{BinOp, CmpOp, Inst, UnOp};
pub use layout::{Address, Layout};
pub use parse::{parse_program, ParseError};
pub use program::{BasicBlock, Function, Program, Terminator};
pub use validate::validate;
