//! Small, dependency-free deterministic PRNGs for program generation and
//! workload inputs.
//!
//! The repo must build with no network access, so instead of the `rand`
//! crate the seeded generators here provide everything the program
//! generator ([`crate::gen`]) and the workload input builders need:
//! [`SplitMix64`] for seeding/stream-splitting and [`Rng64`]
//! (xoshiro256++) for bulk generation, with `rand`-flavoured
//! [`Rng64::gen_range`] / [`Rng64::gen_bool`] helpers.
//!
//! Both algorithms are public domain (Vigna/Blackman); output is fully
//! determined by the seed, which is what reproducible experiments need.
//! Nothing here is cryptographic.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny 64-bit generator used to expand one `u64` seed into
/// the larger xoshiro state (and usable on its own for cheap streams).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0: the repo's workhorse generator.
///
/// # Example
///
/// ```
/// use hotpath_ir::rng::Rng64;
/// let mut rng = Rng64::seed_from_u64(7);
/// let x = rng.gen_range(0..10);
/// assert!(x < 10);
/// let again = Rng64::seed_from_u64(7).gen_range(0..10);
/// assert_eq!(x, again);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64, as the
    /// xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng64 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value below `bound` (Lemire-style rejection keeps the
    /// distribution exact).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling over the biased top bits of a 128-bit product.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value in an integer range, like `rand`'s `gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 random bits against the scaled threshold: exact for the f64
        // probabilities used in practice.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

/// Integer ranges [`Rng64::gen_range`] can sample from, producing a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform value from `self`.
    fn sample(self, rng: &mut Rng64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain: every
                    // 64-bit output is uniform there already.
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                (start as i128 + rng.next_below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i64, u64, i32, u32, u16, u8, usize, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map(|_| Rng64::seed_from_u64(42).next_u64())
            .collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let mut x = Rng64::seed_from_u64(1);
        let mut y = Rng64::seed_from_u64(2);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of SplitMix64 for seed 0, cross-checked against the
        // reference C implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(sm.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..2_000 {
            let v = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&w));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn all_values_reachable_small_range() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all of 0..6 drawn");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Rng64::seed_from_u64(0).gen_range(5..5);
    }
}
