//! A tiny dependency-free FxHash-style hasher for hot-loop hash tables.
//!
//! The default `std::collections::HashMap` hasher is SipHash-1-3: strong
//! against collision flooding, but several times slower than needed for the
//! profiling hot loops, whose keys (path signatures, branch-target windows,
//! Ball–Larus `(func, path)` pairs) are program-controlled, not
//! attacker-controlled. [`FxHasher`] reproduces the multiply-xor scheme
//! rustc itself uses (`rustc-hash`): fold each 8-byte word into the state
//! with one xor, one rotate, and one multiply by a 64-bit constant.
//!
//! Downstream crates use it through the [`FxHashMap`] / [`FxHashSet`]
//! aliases; `hotpath-core` re-exports this module as
//! `hotpath_core::fasthash`.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiply constant (π-derived, as in `rustc-hash`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one `u64`, folded word by word.
#[derive(Clone, Copy, Default, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// FNV-1a 64-bit over `bytes` — the integrity seal used by the sealed
/// binary formats (serve snapshots, self-profiler reports). Not
/// cryptographic; it guards against truncation and bit rot, which is all
/// a local cache or report file needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&(1u32, 2u128)), hash_of(&(2u32, 1u128)));
        assert_ne!(hash_of(&[1u32, 2, 3][..]), hash_of(&[1u32, 2][..]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u128), u64> = FxHashMap::default();
        for i in 0..1_000u32 {
            *m.entry((i % 37, i as u128)).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 1_000);
        assert_eq!(m[&(0, 0u128)], 1);

        let mut s: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(s.insert(vec![1, 2, 3]));
        assert!(!s.insert(vec![1, 2, 3]));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Sub-word tails must affect the hash.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
