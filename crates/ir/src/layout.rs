//! Address layout: the program-wide block ordering that defines *backward*
//! branches.
//!
//! The paper anchors its path definition on "targets of backward taken
//! branches". On a real binary "backward" means a lower code address; this
//! module reproduces that by laying out all blocks of all functions in
//! declaration order and assigning each a start address measured in
//! instruction slots. Workload authors therefore control loop shape the same
//! way a compiler's block placement does: a loop latch that jumps to an
//! earlier block is a backward branch.

use crate::ids::{BlockId, FuncId, LocalBlockId};
use crate::program::Program;

/// A code address in instruction slots.
pub type Address = u64;

/// The computed address layout of a [`Program`].
///
/// Provides the dense [`BlockId`] space used by the VM event stream and the
/// predicate [`Layout::is_backward`] that classifies control transfers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Layout {
    /// Start address of each global block, indexed by `BlockId`.
    addresses: Vec<Address>,
    /// Size (instruction slots) of each global block.
    sizes: Vec<u32>,
    /// `(func, local)` for each global block.
    locations: Vec<(FuncId, LocalBlockId)>,
    /// For each function, the global id of its block 0.
    func_base: Vec<u32>,
    /// Total code size.
    code_size: Address,
}

impl Layout {
    /// Computes the layout of `program`: functions in declaration order,
    /// blocks within each function in declaration order.
    pub fn new(program: &Program) -> Self {
        let total = program.total_blocks();
        let mut addresses = Vec::with_capacity(total);
        let mut sizes = Vec::with_capacity(total);
        let mut locations = Vec::with_capacity(total);
        let mut func_base = Vec::with_capacity(program.functions.len());
        let mut addr: Address = 0;
        for (fi, func) in program.functions.iter().enumerate() {
            func_base.push(addresses.len() as u32);
            for (bi, block) in func.blocks.iter().enumerate() {
                addresses.push(addr);
                sizes.push(block.size() as u32);
                locations.push((FuncId::new(fi as u32), LocalBlockId::new(bi as u32)));
                addr += block.size() as Address;
            }
        }
        Layout {
            addresses,
            sizes,
            locations,
            func_base,
            code_size: addr,
        }
    }

    /// Number of blocks in the layout (the size of the [`BlockId`] space).
    pub fn block_count(&self) -> usize {
        self.addresses.len()
    }

    /// Total code size in instruction slots.
    pub fn code_size(&self) -> Address {
        self.code_size
    }

    /// Start address of a block.
    pub fn address(&self, block: BlockId) -> Address {
        self.addresses[block.index()]
    }

    /// Size of a block in instruction slots.
    pub fn block_size(&self, block: BlockId) -> u32 {
        self.sizes[block.index()]
    }

    /// The `(function, local block)` pair behind a global id.
    pub fn location(&self, block: BlockId) -> (FuncId, LocalBlockId) {
        self.locations[block.index()]
    }

    /// Translates a function-local block reference to its global id.
    pub fn global_id(&self, func: FuncId, block: LocalBlockId) -> BlockId {
        BlockId::new(self.func_base[func.index()] + block.index() as u32)
    }

    /// The global id of a function's entry block.
    pub fn func_entry(&self, func: FuncId) -> BlockId {
        BlockId::new(self.func_base[func.index()])
    }

    /// True if a control transfer from `from` to `to` is *backward*: the
    /// target's start address is not greater than the transferring block's
    /// start address. A self-loop is backward.
    pub fn is_backward(&self, from: BlockId, to: BlockId) -> bool {
        self.address(to) <= self.address(from)
    }

    /// Iterates over all global block ids in address order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.addresses.len() as u32).map(BlockId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BasicBlock, Function, Terminator};

    fn two_func_program() -> Program {
        let f0 = Function {
            name: "f0".into(),
            blocks: vec![
                BasicBlock::new(vec![], Terminator::Jump(LocalBlockId::new(1))),
                BasicBlock::new(vec![], Terminator::Halt),
            ],
            num_regs: 0,
        };
        let f1 = Function {
            name: "f1".into(),
            blocks: vec![BasicBlock::new(vec![], Terminator::Return)],
            num_regs: 0,
        };
        Program {
            functions: vec![f0, f1],
            entry: FuncId::new(0),
            memory_words: 0,
            data: vec![],
        }
    }

    #[test]
    fn addresses_are_cumulative() {
        let p = two_func_program();
        let l = Layout::new(&p);
        assert_eq!(l.block_count(), 3);
        assert_eq!(l.address(BlockId::new(0)), 0);
        assert_eq!(l.address(BlockId::new(1)), 1);
        assert_eq!(l.address(BlockId::new(2)), 2);
        assert_eq!(l.code_size(), 3);
    }

    #[test]
    fn global_and_local_ids_roundtrip() {
        let p = two_func_program();
        let l = Layout::new(&p);
        for b in l.iter_blocks() {
            let (f, lb) = l.location(b);
            assert_eq!(l.global_id(f, lb), b);
        }
        assert_eq!(l.func_entry(FuncId::new(1)), BlockId::new(2));
    }

    #[test]
    fn backwardness_follows_addresses() {
        let p = two_func_program();
        let l = Layout::new(&p);
        let b0 = BlockId::new(0);
        let b1 = BlockId::new(1);
        assert!(l.is_backward(b1, b0));
        assert!(!l.is_backward(b0, b1));
        // Self-transfers are backward.
        assert!(l.is_backward(b0, b0));
    }
}
