//! Parser for the pseudo-assembly emitted by [`crate::pretty`].
//!
//! The textual form round-trips:
//! `parse(program_to_string(p)) ≈ p` (register-file sizes are inferred
//! from use, everything else is exact), which makes `.hpasm` files a
//! convenient way to author small programs and to snapshot generated ones.
//!
//! ```text
//! memory 8
//! data 2 77
//!
//! fn0 main (entry):
//!   b0:
//!     r0 = const 0
//!     jump b1
//!   b1:
//!     r1 = cmp.lt r0, #10
//!     br r1 ? b2 : b3
//!   b2:
//!     r0 = add r0, #1
//!     jump b1
//!   b3:
//!     halt
//! ```
//!
//! Layout `@addr` annotations produced by
//! [`program_to_string`](crate::pretty::program_to_string) with a layout
//! are accepted and ignored.

use std::error::Error;
use std::fmt;

use crate::error::IrError;
use crate::ids::{FuncId, GlobalReg, LocalBlockId, Reg};
use crate::inst::{BinOp, CmpOp, Inst, UnOp};
use crate::program::{BasicBlock, Function, Program, Terminator};
use crate::validate::validate;

/// A parse failure, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<(usize, String)> for ParseError {
    fn from((line, message): (usize, String)) -> Self {
        ParseError { line, message }
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a whole program from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input,
/// or wraps the [`IrError`] message if the parsed program fails
/// validation.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut memory_words = 0usize;
    let mut data: Vec<(usize, i64)> = Vec::new();
    let mut functions: Vec<Function> = Vec::new();
    let mut entry: Option<FuncId> = None;

    // Per-function accumulation.
    let mut cur_func: Option<(String, Vec<BasicBlock>, u16)> = None;
    let mut cur_block: Option<(Vec<Inst>, usize)> = None;

    fn finish_block(
        func: &mut (String, Vec<BasicBlock>, u16),
        block: Option<(Vec<Inst>, usize)>,
    ) -> Result<(), ParseError> {
        if let Some((insts, line)) = block {
            let _ = insts;
            return err(line, "block is missing a terminator");
        }
        let _ = func;
        Ok(())
    }

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with("//") || text.starts_with('#') {
            continue;
        }
        let mut max_reg_seen = 0u16;

        // Directives.
        if let Some(rest) = text.strip_prefix("memory ") {
            memory_words = rest
                .trim()
                .parse()
                .map_err(|_| ParseError::from((line, format!("bad memory size `{rest}`"))))?;
            continue;
        }
        if let Some(rest) = text.strip_prefix("data ") {
            let mut it = rest.split_whitespace();
            let (a, v) = (it.next(), it.next());
            match (
                a.and_then(|a| a.parse().ok()),
                v.and_then(|v| v.parse().ok()),
            ) {
                (Some(a), Some(v)) if it.next().is_none() => data.push((a, v)),
                _ => return err(line, format!("bad data directive `{rest}`")),
            }
            continue;
        }

        // Function header: `fnN name:` or `fnN name (entry):`.
        if text.starts_with("fn") && text.ends_with(':') && !text.starts_with("fn ") {
            if let Some((name_part, is_entry)) = parse_func_header(text) {
                if let Some(mut f) = cur_func.take() {
                    finish_block(&mut f, cur_block.take())?;
                    functions.push(Function {
                        name: f.0,
                        blocks: f.1,
                        num_regs: f.2,
                    });
                }
                if is_entry {
                    entry = Some(FuncId::new(functions.len() as u32));
                }
                cur_func = Some((name_part, Vec::new(), 0));
                continue;
            }
        }

        // Block header: `bN:` or `bN @addr:`.
        if text.starts_with('b') && text.ends_with(':') {
            let inner = &text[1..text.len() - 1];
            let index_part = inner.split('@').next().unwrap_or("").trim();
            if let Ok(idx) = index_part.parse::<usize>() {
                let Some(func) = cur_func.as_mut() else {
                    return err(line, "block outside a function");
                };
                if cur_block.is_some() {
                    return err(line, "previous block is missing a terminator");
                }
                if idx != func.1.len() {
                    return err(
                        line,
                        format!("expected block b{}, found b{idx}", func.1.len()),
                    );
                }
                cur_block = Some((Vec::new(), line));
                continue;
            }
        }

        // Body line: instruction or terminator.
        let Some(func) = cur_func.as_mut() else {
            return err(
                line,
                format!("unexpected line outside a function: `{text}`"),
            );
        };
        let Some(block) = cur_block.as_mut() else {
            return err(line, format!("unexpected line outside a block: `{text}`"));
        };
        if let Some(term) = parse_terminator(text, line)? {
            let (insts, _) = cur_block.take().expect("checked above");
            func.1.push(BasicBlock::new(insts, term));
            // Track registers referenced by the terminator.
            match &func.1.last().expect("just pushed").terminator {
                Terminator::Branch { cond, .. } => {
                    max_reg_seen = max_reg_seen.max(cond.index() as u16 + 1)
                }
                Terminator::Switch { index, .. } => {
                    max_reg_seen = max_reg_seen.max(index.index() as u16 + 1)
                }
                _ => {}
            }
            func.2 = func.2.max(max_reg_seen);
            continue;
        }
        let inst = parse_inst(text, line)?;
        if let Some(d) = inst.def() {
            max_reg_seen = max_reg_seen.max(d.index() as u16 + 1);
        }
        for u in inst.uses() {
            max_reg_seen = max_reg_seen.max(u.index() as u16 + 1);
        }
        func.2 = func.2.max(max_reg_seen);
        block.0.push(inst);
    }

    if let Some(mut f) = cur_func.take() {
        finish_block(&mut f, cur_block.take())?;
        functions.push(Function {
            name: f.0,
            blocks: f.1,
            num_regs: f.2,
        });
    }
    if functions.is_empty() {
        return err(0, "no functions in input");
    }
    let entry = entry.unwrap_or_else(|| {
        functions
            .iter()
            .position(|f| f.name == "main")
            .map(|i| FuncId::new(i as u32))
            .unwrap_or(FuncId::new(0))
    });
    let program = Program {
        functions,
        entry,
        memory_words,
        data,
    };
    validate(&program).map_err(|e: IrError| ParseError {
        line: 0,
        message: e.to_string(),
    })?;
    Ok(program)
}

fn parse_func_header(text: &str) -> Option<(String, bool)> {
    // `fnN name:` / `fnN name (entry):`
    let body = text.strip_suffix(':')?;
    let mut it = body.split_whitespace();
    let fn_tok = it.next()?;
    fn_tok.strip_prefix("fn")?.parse::<u32>().ok()?;
    let name = it.next()?.to_string();
    let is_entry = matches!(it.next(), Some("(entry)"));
    Some((name, is_entry))
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u16>().ok())
        .map(Reg::new)
        .ok_or_else(|| ParseError::from((line, format!("expected register, found `{tok}`"))))
}

fn parse_global(tok: &str, line: usize) -> Result<GlobalReg, ParseError> {
    tok.strip_prefix('g')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| (n as usize) < GlobalReg::COUNT)
        .map(GlobalReg::new)
        .ok_or_else(|| ParseError::from((line, format!("expected global register, found `{tok}`"))))
}

fn parse_block_ref(tok: &str, line: usize) -> Result<LocalBlockId, ParseError> {
    tok.strip_prefix('b')
        .and_then(|n| n.parse::<u32>().ok())
        .map(LocalBlockId::new)
        .ok_or_else(|| ParseError::from((line, format!("expected block, found `{tok}`"))))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    tok.strip_prefix('#')
        .and_then(|n| n.parse::<i64>().ok())
        .ok_or_else(|| ParseError::from((line, format!("expected immediate `#n`, found `{tok}`"))))
}

fn bin_op(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        _ => return None,
    })
}

fn cmp_op(name: &str) -> Option<CmpOp> {
    Some(match name {
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

/// Parses a terminator line; `Ok(None)` means "not a terminator".
fn parse_terminator(text: &str, line: usize) -> Result<Option<Terminator>, ParseError> {
    let toks: Vec<&str> = text.split([' ', ',']).filter(|t| !t.is_empty()).collect();
    Ok(Some(match toks.as_slice() {
        ["halt"] => Terminator::Halt,
        ["return"] => Terminator::Return,
        ["jump", t] => Terminator::Jump(parse_block_ref(t, line)?),
        ["br", c, "?", t, ":", f] => Terminator::Branch {
            cond: parse_reg(c, line)?,
            taken: parse_block_ref(t, line)?,
            fallthrough: parse_block_ref(f, line)?,
        },
        ["call", callee, "ret", b] => Terminator::Call {
            callee: callee
                .strip_prefix("fn")
                .and_then(|n| n.parse::<u32>().ok())
                .map(FuncId::new)
                .ok_or_else(|| {
                    ParseError::from((line, format!("expected function, found `{callee}`")))
                })?,
            ret_to: parse_block_ref(b, line)?,
        },
        ["switch", idx, rest @ ..] if !rest.is_empty() => {
            // `switch rN [b1, b2] default bD`
            let joined = rest.join(" ");
            let (targets_part, default_part) = joined
                .split_once("default")
                .ok_or_else(|| ParseError::from((line, "switch missing `default`".to_string())))?;
            let targets_part = targets_part.trim();
            let inner = targets_part
                .strip_prefix('[')
                .and_then(|t| t.strip_suffix(']'))
                .ok_or_else(|| {
                    ParseError::from((line, "switch targets must be bracketed".to_string()))
                })?;
            let mut targets = Vec::new();
            for t in inner.split_whitespace().filter(|t| !t.is_empty()) {
                targets.push(parse_block_ref(t, line)?);
            }
            Terminator::Switch {
                index: parse_reg(idx, line)?,
                targets,
                default: parse_block_ref(default_part.trim(), line)?,
            }
        }
        _ => return Ok(None),
    }))
}

fn parse_inst(text: &str, line: usize) -> Result<Inst, ParseError> {
    // `store [rA+off] = rS`
    if let Some(rest) = text.strip_prefix("store ") {
        let (addr_part, src_part) = rest
            .split_once('=')
            .ok_or_else(|| ParseError::from((line, "store missing `=`".to_string())))?;
        let (addr, offset) = parse_mem_operand(addr_part.trim(), line)?;
        return Ok(Inst::Store {
            src: parse_reg(src_part.trim(), line)?,
            addr,
            offset,
        });
    }

    // Everything else is `<dst> = <rhs>`.
    let (dst_part, rhs) = text
        .split_once('=')
        .ok_or_else(|| ParseError::from((line, format!("unrecognized line `{text}`"))))?;
    let dst_tok = dst_part.trim();
    let rhs = rhs.trim();

    // `gN = rS`
    if dst_tok.starts_with('g') {
        return Ok(Inst::SetGlobal {
            global: parse_global(dst_tok, line)?,
            src: parse_reg(rhs, line)?,
        });
    }
    let dst = parse_reg(dst_tok, line)?;

    // `rD = load [rA+off]`
    if let Some(rest) = rhs.strip_prefix("load ") {
        let (addr, offset) = parse_mem_operand(rest.trim(), line)?;
        return Ok(Inst::Load { dst, addr, offset });
    }
    // `rD = const N`
    if let Some(rest) = rhs.strip_prefix("const ") {
        let value = rest
            .trim()
            .parse()
            .map_err(|_| ParseError::from((line, format!("bad constant `{rest}`"))))?;
        return Ok(Inst::Const { dst, value });
    }
    // `rD = gN`
    if rhs.starts_with('g') && !rhs.contains(' ') {
        return Ok(Inst::GetGlobal {
            dst,
            global: parse_global(rhs, line)?,
        });
    }
    // `rD = rS`
    if rhs.starts_with('r') && !rhs.contains(' ') {
        return Ok(Inst::Mov {
            dst,
            src: parse_reg(rhs, line)?,
        });
    }
    // `rD = neg rS` / `rD = not rS`
    let toks: Vec<&str> = rhs.split([' ', ',']).filter(|t| !t.is_empty()).collect();
    match toks.as_slice() {
        ["neg", s] => {
            return Ok(Inst::Un {
                op: UnOp::Neg,
                dst,
                src: parse_reg(s, line)?,
            })
        }
        ["not", s] => {
            return Ok(Inst::Un {
                op: UnOp::Not,
                dst,
                src: parse_reg(s, line)?,
            })
        }
        [op, a, b] => {
            // `rD = cmp.lt rA, rB|#n` or `rD = add rA, rB|#n`
            if let Some(cop) = op.strip_prefix("cmp.").and_then(cmp_op) {
                let lhs = parse_reg(a, line)?;
                return Ok(if b.starts_with('#') {
                    Inst::CmpImm {
                        op: cop,
                        dst,
                        lhs,
                        imm: parse_imm(b, line)?,
                    }
                } else {
                    Inst::Cmp {
                        op: cop,
                        dst,
                        lhs,
                        rhs: parse_reg(b, line)?,
                    }
                });
            }
            if let Some(bop) = bin_op(op) {
                let lhs = parse_reg(a, line)?;
                return Ok(if b.starts_with('#') {
                    Inst::BinImm {
                        op: bop,
                        dst,
                        lhs,
                        imm: parse_imm(b, line)?,
                    }
                } else {
                    Inst::Bin {
                        op: bop,
                        dst,
                        lhs,
                        rhs: parse_reg(b, line)?,
                    }
                });
            }
        }
        _ => {}
    }
    err(line, format!("unrecognized instruction `{text}`"))
}

/// Parses `[rA+off]` (off may be negative).
fn parse_mem_operand(tok: &str, line: usize) -> Result<(Reg, i64), ParseError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| ParseError::from((line, format!("expected `[rN+off]`, found `{tok}`"))))?;
    // Split on the LAST '+' or a '-' after the register.
    let plus = inner.rfind('+');
    let (reg_part, off_part) = match plus {
        Some(i) => (&inner[..i], &inner[i + 1..]),
        None => {
            return err(line, format!("expected `[rN+off]`, found `{tok}`"));
        }
    };
    let offset: i64 = off_part
        .parse()
        .map_err(|_| ParseError::from((line, format!("bad memory offset `{off_part}`"))))?;
    Ok((parse_reg(reg_part.trim(), line)?, offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_default;
    use crate::pretty::program_to_string;

    #[test]
    fn parses_a_counting_loop() {
        let src = r"
memory 8
data 2 77

fn0 main (entry):
  b0:
    r0 = const 0
    jump b1
  b1:
    r1 = cmp.lt r0, #10
    br r1 ? b2 : b3
  b2:
    r0 = add r0, #1
    jump b1
  b3:
    r2 = load [r0+-5]
    store [r0+2] = r2
    g0 = r2
    r3 = g0
    halt
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.memory_words, 8);
        assert_eq!(p.data, vec![(2, 77)]);
        assert_eq!(p.functions[0].blocks.len(), 4);
        assert_eq!(p.functions[0].num_regs, 4);
    }

    #[test]
    fn round_trips_generated_programs_textually() {
        for seed in 0..25u64 {
            let p = generate_default(seed);
            let text = program_to_string(&p, None);
            let q = parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            let text2 = program_to_string(&q, None);
            assert_eq!(text, text2, "seed {seed}: textual fixpoint");
        }
    }

    #[test]
    fn accepts_layout_annotations() {
        let p = generate_default(3);
        let layout = crate::layout::Layout::new(&p);
        let text = program_to_string(&p, Some(&layout));
        let q = parse_program(&text).expect("annotated form parses");
        assert_eq!(program_to_string(&q, None), program_to_string(&p, None));
    }

    #[test]
    fn reports_missing_terminator() {
        let src = "fn0 main (entry):\n  b0:\n    r0 = const 1\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn reports_bad_instruction_with_line() {
        let src = "fn0 main (entry):\n  b0:\n    r0 = frobnicate r1\n    halt\n";
        let e = parse_program(src).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn reports_out_of_order_blocks() {
        let src = "fn0 main (entry):\n  b1:\n    halt\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("expected block b0"), "{e}");
    }

    #[test]
    fn validation_failures_surface() {
        let src = "fn0 main (entry):\n  b0:\n    jump b9\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("nonexistent block"), "{e}");
    }

    #[test]
    fn parses_switch_and_call() {
        let src = r"
fn0 helper:
  b0:
    return

fn1 main (entry):
  b0:
    r0 = const 1
    switch r0 [b1, b2] default b3
  b1:
    call fn0 ret b3
  b2:
    jump b3
  b3:
    halt
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.function(p.entry).name, "main");
        assert!(matches!(
            p.functions[1].blocks[0].terminator,
            Terminator::Switch { .. }
        ));
    }
}
