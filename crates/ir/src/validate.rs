//! Whole-program validation.

use crate::error::IrError;
use crate::ids::Reg;
use crate::inst::Inst;
use crate::program::{Program, Terminator};

/// Checks a [`Program`] for structural validity: non-empty, unique function
/// names, in-range entry, in-range block and call targets, in-range
/// registers, and in-range initial data.
///
/// The VM and all analyses assume a validated program; [`crate::builder`]
/// validates automatically on
/// [`ProgramBuilder::finish`](crate::builder::ProgramBuilder::finish).
///
/// # Errors
///
/// Returns the first violation found as an [`IrError`].
pub fn validate(program: &Program) -> Result<(), IrError> {
    if program.functions.is_empty() {
        return Err(IrError::NoFunctions);
    }
    if program.entry.index() >= program.functions.len() {
        return Err(IrError::BadEntry {
            entry: program.entry.index(),
        });
    }
    let mut seen = std::collections::HashSet::new();
    for func in &program.functions {
        if !seen.insert(func.name.as_str()) {
            return Err(IrError::DuplicateFunctionName {
                name: func.name.clone(),
            });
        }
    }
    for func in &program.functions {
        if func.blocks.is_empty() {
            return Err(IrError::EmptyFunction {
                function: func.name.clone(),
            });
        }
        let nblocks = func.blocks.len();
        let nregs = func.num_regs as usize;
        let check_reg = |r: Reg, block: usize| -> Result<(), IrError> {
            if r.index() >= nregs {
                Err(IrError::BadRegister {
                    function: func.name.clone(),
                    block,
                    reg: r.index(),
                    num_regs: nregs,
                })
            } else {
                Ok(())
            }
        };
        for (bi, block) in func.blocks.iter().enumerate() {
            for inst in &block.insts {
                if let Some(d) = inst.def() {
                    check_reg(d, bi)?;
                }
                for u in inst.uses() {
                    check_reg(u, bi)?;
                }
                // GlobalReg construction already bounds-checks; Load/Store
                // addresses are dynamic and checked by the VM.
                let _ = inst as &Inst;
            }
            for target in block.terminator.successors() {
                if target.index() >= nblocks {
                    return Err(IrError::BadBlockTarget {
                        function: func.name.clone(),
                        block: bi,
                        target: target.index(),
                    });
                }
            }
            match &block.terminator {
                Terminator::Branch { cond, .. } => check_reg(*cond, bi)?,
                Terminator::Switch { index, .. } => check_reg(*index, bi)?,
                Terminator::Call { callee, .. } if callee.index() >= program.functions.len() => {
                    return Err(IrError::BadCallTarget {
                        function: func.name.clone(),
                        block: bi,
                        callee: callee.index(),
                    });
                }
                _ => {}
            }
        }
    }
    for &(addr, _) in &program.data {
        if addr >= program.memory_words {
            return Err(IrError::BadDataAddress {
                address: addr,
                memory_words: program.memory_words,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FuncId, LocalBlockId};
    use crate::program::{BasicBlock, Function};

    fn one_block_program(term: Terminator, num_regs: u16) -> Program {
        Program {
            functions: vec![Function {
                name: "main".into(),
                blocks: vec![BasicBlock::new(vec![], term)],
                num_regs,
            }],
            entry: FuncId::new(0),
            memory_words: 0,
            data: vec![],
        }
    }

    #[test]
    fn valid_minimal_program() {
        assert_eq!(validate(&one_block_program(Terminator::Halt, 0)), Ok(()));
    }

    #[test]
    fn bad_entry() {
        let mut p = one_block_program(Terminator::Halt, 0);
        p.entry = FuncId::new(5);
        assert!(matches!(
            validate(&p).unwrap_err(),
            IrError::BadEntry { entry: 5 }
        ));
    }

    #[test]
    fn bad_block_target() {
        let p = one_block_program(Terminator::Jump(LocalBlockId::new(9)), 0);
        assert!(matches!(
            validate(&p).unwrap_err(),
            IrError::BadBlockTarget { target: 9, .. }
        ));
    }

    #[test]
    fn bad_call_target() {
        let p = one_block_program(
            Terminator::Call {
                callee: FuncId::new(4),
                ret_to: LocalBlockId::new(0),
            },
            0,
        );
        assert!(matches!(
            validate(&p).unwrap_err(),
            IrError::BadCallTarget { callee: 4, .. }
        ));
    }

    #[test]
    fn bad_register_in_inst() {
        let mut p = one_block_program(Terminator::Halt, 1);
        p.functions[0].blocks[0].insts.push(Inst::Const {
            dst: Reg::new(3),
            value: 0,
        });
        assert!(matches!(
            validate(&p).unwrap_err(),
            IrError::BadRegister {
                reg: 3,
                num_regs: 1,
                ..
            }
        ));
    }

    #[test]
    fn bad_register_in_branch_cond() {
        let p = one_block_program(
            Terminator::Branch {
                cond: Reg::new(2),
                taken: LocalBlockId::new(0),
                fallthrough: LocalBlockId::new(0),
            },
            1,
        );
        assert!(matches!(
            validate(&p).unwrap_err(),
            IrError::BadRegister { reg: 2, .. }
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let f = Function {
            name: "dup".into(),
            blocks: vec![BasicBlock::new(vec![], Terminator::Halt)],
            num_regs: 0,
        };
        let p = Program {
            functions: vec![f.clone(), f],
            entry: FuncId::new(0),
            memory_words: 0,
            data: vec![],
        };
        assert!(matches!(
            validate(&p).unwrap_err(),
            IrError::DuplicateFunctionName { .. }
        ));
    }

    #[test]
    fn empty_program_rejected() {
        let p = Program {
            functions: vec![],
            entry: FuncId::new(0),
            memory_words: 0,
            data: vec![],
        };
        assert_eq!(validate(&p).unwrap_err(), IrError::NoFunctions);
    }
}
