//! Dense, grow-on-demand counter tables for the profiling hot loops.
//!
//! The profiling structures that fire on every executed block (NET head
//! counters, Boa edge counters, edge/block profiles, Dynamo exit-stub
//! counters) were originally `HashMap`s keyed by block id. Block ids are
//! small dense integers — the VM numbers them contiguously per program —
//! so a flat `Vec` indexed by id replaces hash-and-probe with one indexed
//! load, while growing on demand keeps constructors free of any `Layout`
//! dependency.
//!
//! [`CounterTable`] is the scalar case: one `u64` counter per id, with a
//! sentinel distinguishing *never touched* from *counted back down to
//! zero* so `counter_space()`-style accounting stays exact even for
//! counters that reset (NET heads reset at τ). [`AdjCounters`] is the edge
//! case: per-source adjacency rows of `(target, count)` pairs in
//! first-seen order, replacing maps keyed by packed `(from << 32) | to`
//! words. Out-degrees are small (a handful of successors; tens for switch
//! blocks), so a linear row scan beats hashing the packed key.

use hotpath_telemetry as telemetry;

/// Reserved value marking a slot that has never been touched. Counters
/// would need 2⁶⁴ increments to reach it legitimately.
const EMPTY: u64 = u64::MAX;

/// A dense `u64` counter per small-integer id, growing on demand.
///
/// # Example
///
/// ```
/// use hotpath_ir::dense::CounterTable;
/// let mut t = CounterTable::new();
/// *t.slot(7) += 1;
/// assert_eq!(t.get(7), 1);
/// assert_eq!(t.get(8), 0);
/// assert_eq!(t.live(), 1);
/// ```
#[derive(Clone, Default, Debug)]
pub struct CounterTable {
    slots: Vec<u64>,
    live: usize,
}

impl CounterTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter for `id`, zero if never touched.
    #[inline]
    pub fn get(&self, id: u32) -> u64 {
        match self.slots.get(id as usize) {
            Some(&EMPTY) | None => 0,
            Some(&v) => v,
        }
    }

    /// Mutable access to the counter for `id`, allocating it (at zero) on
    /// first touch.
    #[inline]
    pub fn slot(&mut self, id: u32) -> &mut u64 {
        let idx = id as usize;
        if idx >= self.slots.len() {
            telemetry::emit!(telemetry::Event::CounterTableGrow {
                table: "counter_table",
                from: self.slots.len() as u64,
                to: idx as u64 + 1,
            });
            self.slots.resize(idx + 1, EMPTY);
        }
        let s = &mut self.slots[idx];
        if *s == EMPTY {
            *s = 0;
            self.live += 1;
        }
        s
    }

    /// Number of ids ever touched — the scheme's counter space. A counter
    /// that was reset to zero still occupies its slot.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Forgets every counter, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.live = 0;
    }

    /// Iterates `(id, count)` over touched slots in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != EMPTY)
            .map(|(i, &v)| (i as u32, v))
    }
}

/// Dense per-source edge counters: one adjacency row per `from` id, each
/// row holding `(to, count)` pairs in first-seen order.
#[derive(Clone, Default, Debug)]
pub struct AdjCounters {
    rows: Vec<Vec<(u32, u64)>>,
    edges: usize,
}

impl AdjCounters {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the `from -> to` counter (allocating it on first sight)
    /// and returns the new count.
    #[inline]
    pub fn bump(&mut self, from: u32, to: u32) -> u64 {
        let idx = from as usize;
        if idx >= self.rows.len() {
            telemetry::emit!(telemetry::Event::CounterTableGrow {
                table: "adj_rows",
                from: self.rows.len() as u64,
                to: idx as u64 + 1,
            });
            self.rows.resize_with(idx + 1, Vec::new);
        }
        let row = &mut self.rows[idx];
        for entry in row.iter_mut() {
            if entry.0 == to {
                entry.1 += 1;
                return entry.1;
            }
        }
        row.push((to, 1));
        self.edges += 1;
        1
    }

    /// The count of `from -> to`, zero if never seen.
    #[inline]
    pub fn get(&self, from: u32, to: u32) -> u64 {
        self.row(from)
            .iter()
            .find(|&&(t, _)| t == to)
            .map_or(0, |&(_, c)| c)
    }

    /// The successors of `from` with their counts, in first-seen order.
    #[inline]
    pub fn row(&self, from: u32) -> &[(u32, u64)] {
        self.rows.get(from as usize).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct `(from, to)` pairs seen — the scheme's counter
    /// space.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Forgets every edge, keeping the outer allocation.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
        self.edges = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_distinguishes_reset_from_untouched() {
        let mut t = CounterTable::new();
        assert_eq!(t.get(3), 0);
        assert_eq!(t.live(), 0);
        *t.slot(3) += 5;
        assert_eq!(t.get(3), 5);
        // Reset to zero: still live (it occupies counter space).
        *t.slot(3) = 0;
        assert_eq!(t.get(3), 0);
        assert_eq!(t.live(), 1);
        *t.slot(0) += 1;
        assert_eq!(t.live(), 2);
    }

    #[test]
    fn counter_table_clear_forgets_everything() {
        let mut t = CounterTable::new();
        *t.slot(9) += 2;
        t.clear();
        assert_eq!(t.live(), 0);
        assert_eq!(t.get(9), 0);
        *t.slot(9) += 1;
        assert_eq!(t.get(9), 1);
        assert_eq!(t.live(), 1);
    }

    #[test]
    fn counter_table_iterates_in_id_order() {
        let mut t = CounterTable::new();
        *t.slot(5) += 7;
        *t.slot(1) += 3;
        *t.slot(8) = 0;
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(1, 3), (5, 7), (8, 0)]);
    }

    #[test]
    fn adj_counts_and_preserves_first_seen_order() {
        let mut a = AdjCounters::new();
        assert_eq!(a.bump(2, 9), 1);
        assert_eq!(a.bump(2, 4), 1);
        assert_eq!(a.bump(2, 9), 2);
        assert_eq!(a.get(2, 9), 2);
        assert_eq!(a.get(2, 4), 1);
        assert_eq!(a.get(2, 5), 0);
        assert_eq!(a.get(7, 0), 0);
        assert_eq!(a.row(2), &[(9, 2), (4, 1)]);
        assert_eq!(a.edge_count(), 2);
    }

    #[test]
    fn adj_clear_resets_edges() {
        let mut a = AdjCounters::new();
        a.bump(0, 1);
        a.bump(1, 0);
        assert_eq!(a.edge_count(), 2);
        a.clear();
        assert_eq!(a.edge_count(), 0);
        assert_eq!(a.get(0, 1), 0);
        assert!(a.row(1).is_empty());
    }
}
