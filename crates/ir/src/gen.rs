//! Seeded random structured-program generation.
//!
//! Property tests need a steady supply of valid, reducible, terminating
//! programs. [`generate`] produces them from a seed by recursively emitting
//! structured control flow — sequences, if/else, bounded counted loops,
//! switches, and calls into generated helper functions — so every program
//! validates, every CFG is reducible (Ball–Larus numbering succeeds), and
//! every run halts within a predictable block budget.

use crate::rng::Rng64;

use crate::builder::{FunctionBuilder, ProgramBuilder};
use crate::ids::{FuncId, GlobalReg, Reg};
use crate::inst::{BinOp, CmpOp};
use crate::program::Program;

/// Tunable knobs for [`generate`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GenConfig {
    /// Maximum structural nesting depth.
    pub max_depth: u32,
    /// Maximum statements per sequence.
    pub max_stmts: u32,
    /// Maximum trip count of generated counted loops.
    pub max_trip: u32,
    /// Number of helper functions available to call.
    pub helper_funcs: u32,
    /// Probability (0..=100) that a statement is a loop.
    pub loop_weight: u32,
    /// Words of scratch memory the program may address.
    pub memory_words: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 4,
            max_stmts: 4,
            max_trip: 6,
            helper_funcs: 2,
            loop_weight: 35,
            memory_words: 64,
        }
    }
}

/// Generates a valid, halting, reducible program from `seed`.
///
/// The same `(seed, config)` pair always yields the same program, so
/// property tests can shrink on the seed.
pub fn generate(seed: u64, config: &GenConfig) -> Program {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut pb = ProgramBuilder::new();

    // Declare helpers so main can call them; helpers never call (depth-1
    // call graph keeps generated runs finite and stacks shallow).
    let helper_ids: Vec<FuncId> = (0..config.helper_funcs)
        .map(|i| pb.declare(format!("helper{i}")))
        .collect();

    for (i, _) in helper_ids.iter().enumerate() {
        let mut fb = FunctionBuilder::new(format!("helper{i}"));
        let mut ctx = GenCtx {
            rng: &mut rng,
            config,
            callees: &[],
        };
        ctx.gen_body(&mut fb, config.max_depth.saturating_sub(1));
        fb.ret();
        pb.add_function(fb).expect("generated helper is complete");
    }

    let mut fb = FunctionBuilder::new("main");
    let mut ctx = GenCtx {
        rng: &mut rng,
        config,
        callees: &helper_ids,
    };
    ctx.gen_body(&mut fb, config.max_depth);
    fb.halt();
    pb.add_function(fb).expect("generated main is complete");
    pb.memory_words(config.memory_words);
    pb.finish().expect("generated program validates")
}

struct GenCtx<'a> {
    rng: &'a mut Rng64,
    config: &'a GenConfig,
    callees: &'a [FuncId],
}

impl GenCtx<'_> {
    /// Emits a statement sequence into the currently open block; leaves a
    /// block open when returning.
    fn gen_body(&mut self, fb: &mut FunctionBuilder, depth: u32) {
        let stmts = self.rng.gen_range(1..=self.config.max_stmts);
        for _ in 0..stmts {
            self.gen_stmt(fb, depth);
        }
    }

    fn gen_stmt(&mut self, fb: &mut FunctionBuilder, depth: u32) {
        let choice = self.rng.gen_range(0u32..100);
        if depth == 0 || choice >= 90 {
            self.gen_straightline(fb);
        } else if choice < self.config.loop_weight {
            self.gen_loop(fb, depth - 1);
        } else if choice < self.config.loop_weight + 25 {
            self.gen_if(fb, depth - 1);
        } else if choice < self.config.loop_weight + 35 {
            self.gen_switch(fb, depth - 1);
        } else if choice < self.config.loop_weight + 40 && !self.callees.is_empty() {
            let callee = self.callees[self.rng.gen_range(0..self.callees.len())];
            let cont = fb.new_block();
            fb.call(callee, cont);
            fb.switch_to(cont);
        } else {
            self.gen_straightline(fb);
        }
    }

    fn gen_straightline(&mut self, fb: &mut FunctionBuilder) {
        let a = fb.reg();
        let b = fb.reg();
        fb.const_(a, self.rng.gen_range(-100..100));
        let g = GlobalReg::new(self.rng.gen_range(0..4));
        fb.get_global(b, g);
        let op = match self.rng.gen_range(0u32..5) {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Xor,
            3 => BinOp::Mul,
            _ => BinOp::And,
        };
        fb.bin(op, a, a, b);
        fb.set_global(g, a);
        if self.config.memory_words > 0 && self.rng.gen_bool(0.3) {
            let addr = fb.reg();
            fb.const_(addr, self.rng.gen_range(0..self.config.memory_words as i64));
            if self.rng.gen_bool(0.5) {
                fb.store(a, addr, 0);
            } else {
                fb.load(b, addr, 0);
            }
        }
    }

    /// Counted loop: header tests a fresh counter against a random trip.
    fn gen_loop(&mut self, fb: &mut FunctionBuilder, depth: u32) {
        let i = fb.reg();
        let trip = self.rng.gen_range(1..=self.config.max_trip) as i64;
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        self.gen_body(fb, depth);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
    }

    fn gen_if(&mut self, fb: &mut FunctionBuilder, depth: u32) {
        let v = fb.reg();
        let g = GlobalReg::new(self.rng.gen_range(0..4));
        fb.get_global(v, g);
        let c = fb.cmp_imm(CmpOp::Lt, v, self.rng.gen_range(-50..50));
        let then_b = fb.new_block();
        let else_b = fb.new_block();
        let join = fb.new_block();
        fb.branch(c, then_b, else_b);
        fb.switch_to(then_b);
        self.gen_body(fb, depth);
        fb.jump(join);
        fb.switch_to(else_b);
        self.gen_body(fb, depth);
        fb.jump(join);
        fb.switch_to(join);
    }

    fn gen_switch(&mut self, fb: &mut FunctionBuilder, depth: u32) {
        let arms = self.rng.gen_range(2..=4usize);
        let v = fb.reg();
        let g = GlobalReg::new(self.rng.gen_range(0..4));
        fb.get_global(v, g);
        let sel = fb.reg();
        fb.bin_imm(BinOp::And, sel, v, (arms - 1) as i64);
        let join = fb.new_block();
        let arm_blocks: Vec<_> = (0..arms).map(|_| fb.new_block()).collect();
        fb.switch(sel, arm_blocks.clone(), join);
        for arm in arm_blocks {
            fb.switch_to(arm);
            self.gen_body(fb, depth);
            fb.jump(join);
        }
        fb.switch_to(join);
    }
}

/// Convenience: generate with default config.
pub fn generate_default(seed: u64) -> Program {
    generate(seed, &GenConfig::default())
}

// Silence an unused-import lint path for Reg (used in docs/tests contexts).
#[allow(unused)]
fn _reg_is_public(_: Reg) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball_larus::BallLarus;
    use crate::validate::validate;

    #[test]
    fn generated_programs_validate() {
        for seed in 0..50 {
            let p = generate_default(seed);
            validate(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_default(7);
        let b = generate_default(7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_default(1);
        let b = generate_default(2);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_cfgs_are_reducible() {
        for seed in 0..30 {
            let p = generate_default(seed);
            for f in &p.functions {
                BallLarus::new(f).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn config_controls_size() {
        let small = generate(
            3,
            &GenConfig {
                max_depth: 1,
                max_stmts: 1,
                helper_funcs: 0,
                ..GenConfig::default()
            },
        );
        let big = generate(
            3,
            &GenConfig {
                max_depth: 5,
                max_stmts: 5,
                helper_funcs: 3,
                ..GenConfig::default()
            },
        );
        assert!(big.total_blocks() > small.total_blocks());
        assert!(big.functions.len() > small.functions.len());
    }
}
