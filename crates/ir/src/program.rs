//! Programs, functions, basic blocks, and terminators.

use std::fmt;

use crate::ids::{FuncId, LocalBlockId, Reg};
use crate::inst::Inst;

/// The control-flow instruction that ends every basic block.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Unconditional jump to another block in the same function.
    Jump(LocalBlockId),
    /// Conditional branch: transfers to `taken` when `cond != 0`, otherwise
    /// to `fallthrough`.
    Branch {
        /// Condition register; non-zero means taken.
        cond: Reg,
        /// Target when the condition holds.
        taken: LocalBlockId,
        /// Target when the condition does not hold.
        fallthrough: LocalBlockId,
    },
    /// Indirect branch through a jump table: transfers to
    /// `targets[index]`, or to `default` when `index` is out of range.
    ///
    /// This models the *indirect branches* of the paper's path signatures:
    /// the dynamic target is appended to the signature's indirect-target
    /// list instead of contributing a history bit.
    Switch {
        /// Register whose value selects the jump-table entry.
        index: Reg,
        /// Jump-table targets.
        targets: Vec<LocalBlockId>,
        /// Target when `index` does not select a table entry.
        default: LocalBlockId,
    },
    /// Call `callee`; on return, execution continues at `ret_to` in the
    /// calling function.
    Call {
        /// The function being invoked.
        callee: FuncId,
        /// Block in the calling function that the matching return
        /// transfers to.
        ret_to: LocalBlockId,
    },
    /// Return to the most recent caller (a VM error if the call stack is
    /// empty).
    Return,
    /// Stop the machine successfully.
    Halt,
}

impl Terminator {
    /// Returns the intraprocedural successor blocks of this terminator.
    ///
    /// A `Call`'s successor is its return continuation; `Return` and `Halt`
    /// have none. This is the successor relation used by the CFG analyses.
    pub fn successors(&self) -> Vec<LocalBlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                taken, fallthrough, ..
            } => vec![*taken, *fallthrough],
            Terminator::Switch {
                targets, default, ..
            } => {
                let mut v = targets.clone();
                v.push(*default);
                v
            }
            Terminator::Call { ret_to, .. } => vec![*ret_to],
            Terminator::Return | Terminator::Halt => Vec::new(),
        }
    }

    /// True if this terminator is a conditional or indirect branch, i.e.
    /// contributes to the dynamic branch count used by the profiling-cost
    /// model.
    pub fn is_dynamic_branch(&self) -> bool {
        matches!(self, Terminator::Branch { .. } | Terminator::Switch { .. })
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jump {t}"),
            Terminator::Branch {
                cond,
                taken,
                fallthrough,
            } => write!(f, "br {cond} ? {taken} : {fallthrough}"),
            Terminator::Switch {
                index,
                targets,
                default,
            } => {
                write!(f, "switch {index} [")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "] default {default}")
            }
            Terminator::Call { callee, ret_to } => write!(f, "call {callee} ret {ret_to}"),
            Terminator::Return => f.write_str("return"),
            Terminator::Halt => f.write_str("halt"),
        }
    }
}

/// A maximal straight-line code sequence ended by one [`Terminator`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasicBlock {
    /// Straight-line instructions executed in order.
    pub insts: Vec<Inst>,
    /// The control transfer ending the block.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Creates a block with the given instructions and terminator.
    pub fn new(insts: Vec<Inst>, terminator: Terminator) -> Self {
        BasicBlock { insts, terminator }
    }

    /// Code size of the block in instruction slots (straight-line
    /// instructions plus the terminator). Layout addresses are measured in
    /// these units.
    pub fn size(&self) -> usize {
        self.insts.len() + 1
    }
}

/// A function: a named CFG of basic blocks with a private register frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Human-readable name, used by the pretty-printer and diagnostics.
    pub name: String,
    /// Blocks; `LocalBlockId(i)` refers to `blocks[i]`. Block 0 is the
    /// entry.
    pub blocks: Vec<BasicBlock>,
    /// Number of registers in this function's frame.
    pub num_regs: u16,
}

impl Function {
    /// The entry block of every function.
    pub const ENTRY: LocalBlockId = LocalBlockId::new(0);

    /// Returns the block for a local id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (validated programs never do this).
    pub fn block(&self, id: LocalBlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Iterates over `(LocalBlockId, &BasicBlock)` pairs in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (LocalBlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (LocalBlockId::new(i as u32), b))
    }
}

/// A complete program: functions plus machine configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// All functions; `FuncId(i)` refers to `functions[i]`.
    pub functions: Vec<Function>,
    /// The function where execution starts.
    pub entry: FuncId,
    /// Size of data memory in 64-bit words.
    pub memory_words: usize,
    /// Initial memory image as `(word_address, value)` pairs; unlisted words
    /// start at zero.
    pub data: Vec<(usize, i64)>,
}

impl Program {
    /// Returns the function for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (validated programs never do this).
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Total number of basic blocks across all functions.
    pub fn total_blocks(&self) -> usize {
        self.functions.iter().map(|f| f.blocks.len()).sum()
    }

    /// Total static code size in instruction slots.
    pub fn code_size(&self) -> usize {
        self.functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.size())
            .sum()
    }

    /// Looks up a function id by name.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;

    fn b(term: Terminator) -> BasicBlock {
        BasicBlock::new(Vec::new(), term)
    }

    #[test]
    fn terminator_successors() {
        let t0 = LocalBlockId::new(0);
        let t1 = LocalBlockId::new(1);
        let t2 = LocalBlockId::new(2);
        assert_eq!(Terminator::Jump(t1).successors(), vec![t1]);
        assert_eq!(
            Terminator::Branch {
                cond: Reg::new(0),
                taken: t1,
                fallthrough: t2
            }
            .successors(),
            vec![t1, t2]
        );
        assert_eq!(
            Terminator::Switch {
                index: Reg::new(0),
                targets: vec![t0, t1],
                default: t2
            }
            .successors(),
            vec![t0, t1, t2]
        );
        assert_eq!(
            Terminator::Call {
                callee: FuncId::new(1),
                ret_to: t1
            }
            .successors(),
            vec![t1]
        );
        assert!(Terminator::Return.successors().is_empty());
        assert!(Terminator::Halt.successors().is_empty());
    }

    #[test]
    fn dynamic_branch_classification() {
        assert!(Terminator::Branch {
            cond: Reg::new(0),
            taken: LocalBlockId::new(0),
            fallthrough: LocalBlockId::new(1)
        }
        .is_dynamic_branch());
        assert!(Terminator::Switch {
            index: Reg::new(0),
            targets: vec![],
            default: LocalBlockId::new(0)
        }
        .is_dynamic_branch());
        assert!(!Terminator::Jump(LocalBlockId::new(0)).is_dynamic_branch());
        assert!(!Terminator::Return.is_dynamic_branch());
    }

    #[test]
    fn program_accessors() {
        let f = Function {
            name: "main".to_string(),
            blocks: vec![b(Terminator::Halt)],
            num_regs: 0,
        };
        let p = Program {
            functions: vec![f],
            entry: FuncId::new(0),
            memory_words: 16,
            data: vec![(3, 42)],
        };
        assert_eq!(p.total_blocks(), 1);
        assert_eq!(p.code_size(), 1);
        assert_eq!(p.find_function("main"), Some(FuncId::new(0)));
        assert_eq!(p.find_function("nope"), None);
        assert_eq!(p.function(FuncId::new(0)).name, "main");
        assert_eq!(Function::ENTRY.index(), 0);
    }

    #[test]
    fn block_size_counts_terminator() {
        let blk = BasicBlock::new(
            vec![Inst::Const {
                dst: Reg::new(0),
                value: 1,
            }],
            Terminator::Halt,
        );
        assert_eq!(blk.size(), 2);
    }
}
