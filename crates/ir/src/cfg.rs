//! Intraprocedural control-flow graph analyses.
//!
//! Successor/predecessor maps, reverse postorder, and dominator trees
//! (Cooper–Harvey–Kennedy iterative algorithm). These back the natural-loop
//! detection in [`crate::loops`] and the Ball–Larus numbering in
//! [`crate::ball_larus`].

use crate::ids::LocalBlockId;
use crate::program::Function;

/// Per-function CFG with precomputed predecessor lists and reverse
/// postorder.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<LocalBlockId>>,
    preds: Vec<Vec<LocalBlockId>>,
    /// Blocks in reverse postorder of a DFS from the entry. Unreachable
    /// blocks are absent.
    rpo: Vec<LocalBlockId>,
    /// Position of each block in `rpo`; `usize::MAX` for unreachable blocks.
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `func` using
    /// [`Terminator::successors`](crate::Terminator::successors) (calls fall
    /// through to their return continuation).
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, block) in func.blocks.iter().enumerate() {
            let from = LocalBlockId::new(i as u32);
            for s in block.terminator.successors() {
                if !succs[i].contains(&s) {
                    succs[i].push(s);
                    preds[s.index()].push(from);
                }
            }
        }

        // Iterative DFS computing postorder, then reverse it.
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut postorder = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = Vec::new();
        if n > 0 {
            stack.push((0, 0));
            state[0] = 1;
        }
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < succs[node].len() {
                let s = succs[node][*next].index();
                *next += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[node] = 2;
                postorder.push(LocalBlockId::new(node as u32));
                stack.pop();
            }
        }
        postorder.reverse();
        let rpo = postorder;
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    /// Number of blocks in the function (including unreachable ones).
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }

    /// Successors of a block (deduplicated, in terminator order).
    pub fn succs(&self, b: LocalBlockId) -> &[LocalBlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of a block.
    pub fn preds(&self, b: LocalBlockId) -> &[LocalBlockId] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse postorder from the entry; unreachable blocks are
    /// omitted.
    pub fn reverse_postorder(&self) -> &[LocalBlockId] {
        &self.rpo
    }

    /// True if the block is reachable from the entry.
    pub fn is_reachable(&self, b: LocalBlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// Position of a block in reverse postorder, if reachable.
    pub fn rpo_index(&self, b: LocalBlockId) -> Option<usize> {
        match self.rpo_index[b.index()] {
            usize::MAX => None,
            i => Some(i),
        }
    }
}

/// Dominator tree computed with the Cooper–Harvey–Kennedy iterative
/// algorithm over reverse postorder.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// Immediate dominator of each block; entry maps to itself, unreachable
    /// blocks map to `None`.
    idom: Vec<Option<LocalBlockId>>,
}

impl Dominators {
    /// Computes dominators for a CFG.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.block_count();
        let mut idom: Vec<Option<usize>> = vec![None; n];
        if n == 0 {
            return Dominators { idom: Vec::new() };
        }
        let entry = 0usize;
        idom[entry] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.reverse_postorder().iter().skip(1) {
                let bi = b.index();
                // Find first processed predecessor.
                let mut new_idom: Option<usize> = None;
                for &p in cfg.preds(b) {
                    let pi = p.index();
                    if idom[pi].is_some() {
                        new_idom = Some(match new_idom {
                            None => pi,
                            Some(cur) => intersect(cfg, &idom, pi, cur),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom[bi] != Some(ni) {
                        idom[bi] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators {
            idom: idom
                .into_iter()
                .map(|o| o.map(|i| LocalBlockId::new(i as u32)))
                .collect(),
        }
    }

    /// Immediate dominator of `b`. The entry block dominates itself;
    /// unreachable blocks have none.
    pub fn idom(&self, b: LocalBlockId) -> Option<LocalBlockId> {
        self.idom[b.index()]
    }

    /// True if `a` dominates `b` (reflexive). Unreachable blocks dominate
    /// nothing and are dominated by nothing.
    pub fn dominates(&self, a: LocalBlockId, b: LocalBlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(cfg: &Cfg, idom: &[Option<usize>], mut a: usize, mut b: usize) -> usize {
    let rpo_of = |x: usize| {
        cfg.rpo_index(LocalBlockId::new(x as u32))
            .expect("reachable")
    };
    while a != b {
        while rpo_of(a) > rpo_of(b) {
            a = idom[a].expect("processed");
        }
        while rpo_of(b) > rpo_of(a) {
            b = idom[b].expect("processed");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::program::{BasicBlock, Terminator};

    fn func(terms: Vec<Terminator>) -> Function {
        Function {
            name: "t".into(),
            blocks: terms
                .into_iter()
                .map(|t| BasicBlock::new(vec![], t))
                .collect(),
            num_regs: 4,
        }
    }

    fn l(i: u32) -> LocalBlockId {
        LocalBlockId::new(i)
    }

    /// Diamond: 0 -> {1,2} -> 3
    fn diamond() -> Function {
        func(vec![
            Terminator::Branch {
                cond: Reg::new(0),
                taken: l(1),
                fallthrough: l(2),
            },
            Terminator::Jump(l(3)),
            Terminator::Jump(l(3)),
            Terminator::Halt,
        ])
    }

    #[test]
    fn diamond_cfg_edges() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(l(0)), &[l(1), l(2)]);
        assert_eq!(cfg.preds(l(3)), &[l(1), l(2)]);
        assert_eq!(cfg.reverse_postorder()[0], l(0));
        assert_eq!(cfg.reverse_postorder().len(), 4);
        assert!(cfg.is_reachable(l(3)));
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(l(0)), Some(l(0)));
        assert_eq!(dom.idom(l(1)), Some(l(0)));
        assert_eq!(dom.idom(l(2)), Some(l(0)));
        assert_eq!(dom.idom(l(3)), Some(l(0)));
        assert!(dom.dominates(l(0), l(3)));
        assert!(!dom.dominates(l(1), l(3)));
        assert!(dom.dominates(l(3), l(3)));
    }

    #[test]
    fn loop_dominators() {
        // 0 -> 1 -> 2 -> 1 (latch), 2 -> 3 exit
        let f = func(vec![
            Terminator::Jump(l(1)),
            Terminator::Jump(l(2)),
            Terminator::Branch {
                cond: Reg::new(0),
                taken: l(1),
                fallthrough: l(3),
            },
            Terminator::Halt,
        ]);
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(l(1)), Some(l(0)));
        assert_eq!(dom.idom(l(2)), Some(l(1)));
        assert_eq!(dom.idom(l(3)), Some(l(2)));
        assert!(dom.dominates(l(1), l(3)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let f = func(vec![Terminator::Halt, Terminator::Halt]);
        let cfg = Cfg::new(&f);
        assert!(!cfg.is_reachable(l(1)));
        assert_eq!(cfg.rpo_index(l(1)), None);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom(l(1)), None);
        assert!(!dom.dominates(l(0), l(1)));
    }

    #[test]
    fn duplicate_successors_are_deduplicated() {
        let f = func(vec![
            Terminator::Branch {
                cond: Reg::new(0),
                taken: l(1),
                fallthrough: l(1),
            },
            Terminator::Halt,
        ]);
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(l(0)), &[l(1)]);
        assert_eq!(cfg.preds(l(1)), &[l(0)]);
    }
}
