//! Ball–Larus acyclic path numbering with spanning-tree instrumentation
//! placement.
//!
//! This is the "efficient path profiling" substrate described in §2 of the
//! paper (Ball & Larus, MICRO-29, 1996): each function's CFG is turned into
//! a DAG by replacing loop back edges with pseudo `ENTRY -> header` and
//! `latch -> EXIT` edges, every DAG edge gets a value such that the sum of
//! the values along any `ENTRY -> EXIT` path is a unique number in
//! `0..num_paths`, and a maximum-weight spanning tree confines runtime
//! increments to chord edges.
//!
//! The numbering provides:
//!
//! * [`BallLarus::num_paths`] — the size of the acyclic path space
//!   (potentially exponential in the block count, hence `u128`);
//! * [`BallLarus::encode`] / [`BallLarus::decode`] — bijection between
//!   block sequences and path ids;
//! * runtime actions ([`BallLarus::path_start`], [`BallLarus::transfer`],
//!   [`BallLarus::block_exit_inc`]) used by the `hotpath-profiles` crate to
//!   drive a Ball–Larus profile from the VM event stream;
//! * [`BallLarus::instrumented_edge_count`] — how many real CFG edges carry
//!   a nonzero increment, the paper's measure of profiling operations.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::cfg::{Cfg, Dominators};
use crate::ids::LocalBlockId;
use crate::loops::LoopForest;
use crate::program::{Function, Terminator};

/// Errors from constructing a [`BallLarus`] numbering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BallLarusError {
    /// The function's CFG is irreducible: removing dominator back edges did
    /// not produce a DAG.
    Irreducible {
        /// Name of the offending function.
        function: String,
    },
    /// The acyclic path space exceeds the supported range.
    TooManyPaths {
        /// Name of the offending function.
        function: String,
    },
}

impl fmt::Display for BallLarusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BallLarusError::Irreducible { function } => {
                write!(f, "function `{function}` has an irreducible CFG")
            }
            BallLarusError::TooManyPaths { function } => {
                write!(
                    f,
                    "function `{function}` has too many acyclic paths to number"
                )
            }
        }
    }
}

impl Error for BallLarusError {}

/// What the profiler must do on a dynamic control transfer, as dictated by
/// the numbering. See [`BallLarus::transfer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transfer {
    /// Stay on the current path; add the increment to the path register.
    Advance(i128),
    /// The transfer is a loop back edge: finish the current path by adding
    /// `end_inc` to the path register and counting it, then restart the
    /// register at `restart` for the new path.
    EndAndRestart {
        /// Increment applied before the finished path is counted.
        end_inc: i128,
        /// Fresh value of the path register for the new path.
        restart: i128,
    },
}

#[derive(Clone, Debug)]
struct DagEdge {
    from: usize,
    to: usize,
    val: i128,
    inc: i128,
    /// True for edges present in the CFG (not ENTRY/EXIT pseudo edges).
    real: bool,
}

/// The Ball–Larus numbering of one function.
#[derive(Clone, Debug)]
pub struct BallLarus {
    num_paths: u128,
    init: i128,
    /// `inc` for the pseudo `ENTRY -> block` edge, keyed by block index;
    /// present exactly for valid path-start blocks.
    entry_inc: HashMap<usize, i128>,
    /// `inc` for the `block -> EXIT` edge, keyed by block index; present
    /// exactly for valid path-end blocks (latches, returns, halts).
    exit_inc: HashMap<usize, i128>,
    /// `inc` for real CFG edges, keyed by `(from, to)`.
    edge_inc: HashMap<(usize, usize), i128>,
    /// Real CFG edges that are loop back edges.
    back_edges: HashMap<(usize, usize), ()>,
    /// Number of real CFG edges with a nonzero increment.
    instrumented: usize,
    /// DAG successor lists (with per-edge `val`) used by decode.
    dag_succs: Vec<Vec<(usize, i128)>>,
    entry_node: usize,
    exit_node: usize,
}

impl BallLarus {
    /// Numbers the acyclic paths of `func`.
    ///
    /// # Errors
    ///
    /// Returns [`BallLarusError::Irreducible`] for irreducible CFGs and
    /// [`BallLarusError::TooManyPaths`] if the path count overflows.
    pub fn new(func: &Function) -> Result<Self, BallLarusError> {
        let cfg = Cfg::new(func);
        let dom = Dominators::new(&cfg);
        let loops = LoopForest::from_cfg(&cfg, &dom);
        let n = func.blocks.len();
        let entry_node = n;
        let exit_node = n + 1;

        // Loop depth per block, used as the spanning-tree weight heuristic:
        // deeper edges run more often, so keeping them OFF the instrumented
        // chord set mirrors Ball–Larus' frequency-weighted tree.
        let mut depth = vec![0u32; n];
        for lp in loops.loops() {
            for b in &lp.body {
                depth[b.index()] += 1;
            }
        }

        // Collect DAG edges.
        let mut edges: Vec<DagEdge> = Vec::new();
        let mut back_edges: HashMap<(usize, usize), ()> = HashMap::new();
        let mut entry_targets: Vec<usize> = vec![Function::ENTRY.index()];
        let mut exit_sources: Vec<usize> = Vec::new();
        for &b in cfg.reverse_postorder() {
            let bi = b.index();
            match &func.blocks[bi].terminator {
                Terminator::Return | Terminator::Halt => exit_sources.push(bi),
                _ => {}
            }
            for &s in cfg.succs(b) {
                let si = s.index();
                if dom.dominates(s, b) {
                    back_edges.insert((bi, si), ());
                    if !entry_targets.contains(&si) {
                        entry_targets.push(si);
                    }
                    if !exit_sources.contains(&bi) {
                        exit_sources.push(bi);
                    }
                } else {
                    edges.push(DagEdge {
                        from: bi,
                        to: si,
                        val: 0,
                        inc: 0,
                        real: true,
                    });
                }
            }
        }
        for &t in &entry_targets {
            edges.push(DagEdge {
                from: entry_node,
                to: t,
                val: 0,
                inc: 0,
                real: false,
            });
        }
        for &s in &exit_sources {
            edges.push(DagEdge {
                from: s,
                to: exit_node,
                val: 0,
                inc: 0,
                real: false,
            });
        }

        // Topological order over DAG nodes (only nodes touched by edges plus
        // ENTRY/EXIT matter; unreachable blocks have no edges).
        let node_count = n + 2;
        let mut succ_idx: Vec<Vec<usize>> = vec![Vec::new(); node_count];
        let mut indeg = vec![0usize; node_count];
        let mut present = vec![false; node_count];
        present[entry_node] = true;
        present[exit_node] = true;
        for (i, e) in edges.iter().enumerate() {
            succ_idx[e.from].push(i);
            indeg[e.to] += 1;
            present[e.from] = true;
            present[e.to] = true;
        }
        let mut topo = Vec::with_capacity(node_count);
        let mut work: Vec<usize> = (0..node_count)
            .filter(|&v| present[v] && indeg[v] == 0)
            .collect();
        while let Some(v) = work.pop() {
            topo.push(v);
            for &ei in &succ_idx[v] {
                let t = edges[ei].to;
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    work.push(t);
                }
            }
        }
        if topo.len() != present.iter().filter(|&&p| p).count() {
            return Err(BallLarusError::Irreducible {
                function: func.name.clone(),
            });
        }

        // NumPaths + edge values, in reverse topological order.
        let mut node_paths = vec![0u128; node_count];
        node_paths[exit_node] = 1;
        for &v in topo.iter().rev() {
            if v == exit_node {
                continue;
            }
            let mut sum: u128 = 0;
            for &ei in &succ_idx[v] {
                edges[ei].val = i128::try_from(sum).map_err(|_| BallLarusError::TooManyPaths {
                    function: func.name.clone(),
                })?;
                sum = sum
                    .checked_add(node_paths[edges[ei].to])
                    .filter(|&s| s <= (i128::MAX as u128))
                    .ok_or_else(|| BallLarusError::TooManyPaths {
                        function: func.name.clone(),
                    })?;
            }
            node_paths[v] = sum;
        }
        let num_paths = node_paths[entry_node];

        // Maximum-weight spanning tree (Prim) over the undirected DAG.
        // Weight of a real edge = loop depth of its shallower endpoint;
        // pseudo-edge weight is irrelevant (their increments fold into the
        // mandatory start/end operations), so give them the highest weight
        // to keep real edges off the tree when possible... quite the
        // opposite: give pseudo edges maximal weight so that REAL edges in
        // hot loops can also join the tree.
        let weight = |e: &DagEdge| -> u64 {
            if !e.real {
                u64::MAX
            } else {
                let df = if e.from < n { depth[e.from] } else { 0 };
                let dt = if e.to < n { depth[e.to] } else { 0 };
                df.min(dt) as u64
            }
        };
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); node_count];
        for (i, e) in edges.iter().enumerate() {
            adj[e.from].push(i);
            adj[e.to].push(i);
        }
        let mut in_tree_node = vec![false; node_count];
        let mut tree_edge = vec![false; edges.len()];
        let mut d = vec![0i128; node_count];
        in_tree_node[entry_node] = true;
        // Prim: repeatedly take the max-weight edge crossing the cut.
        loop {
            let mut best: Option<(usize, u64)> = None;
            for (i, e) in edges.iter().enumerate() {
                if in_tree_node[e.from] ^ in_tree_node[e.to] {
                    let w = weight(e);
                    if best.map_or(true, |(_, bw)| w > bw) {
                        best = Some((i, w));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            tree_edge[i] = true;
            let e = &edges[i];
            if in_tree_node[e.from] {
                d[e.to] = d[e.from] + e.val;
                in_tree_node[e.to] = true;
            } else {
                d[e.from] = d[e.to] - e.val;
                in_tree_node[e.from] = true;
            }
        }

        // Chord increments: inc(e) = D(from) + val - D(to); zero on tree
        // edges by construction.
        let mut entry_inc = HashMap::new();
        let mut exit_inc = HashMap::new();
        let mut edge_inc = HashMap::new();
        let mut instrumented = 0usize;
        let mut dag_succs: Vec<Vec<(usize, i128)>> = vec![Vec::new(); node_count];
        for (i, e) in edges.iter_mut().enumerate() {
            e.inc = d[e.from] + e.val - d[e.to];
            debug_assert!(!tree_edge[i] || e.inc == 0, "tree edge got nonzero inc");
            if e.real {
                edge_inc.insert((e.from, e.to), e.inc);
                if e.inc != 0 {
                    instrumented += 1;
                }
            } else if e.from == entry_node {
                entry_inc.insert(e.to, e.inc);
            } else {
                exit_inc.insert(e.from, e.inc);
            }
            dag_succs[e.from].push((e.to, e.val));
        }
        // decode() picks the successor with the greatest val <= remainder;
        // keep lists sorted by val.
        for succs in &mut dag_succs {
            succs.sort_by_key(|&(_, val)| val);
        }

        let init = d[exit_node];
        Ok(BallLarus {
            num_paths,
            init,
            entry_inc,
            exit_inc,
            edge_inc,
            back_edges,
            instrumented,
            dag_succs,
            entry_node,
            exit_node,
        })
    }

    /// Number of distinct acyclic (forward) paths through the function.
    pub fn num_paths(&self) -> u128 {
        self.num_paths
    }

    /// Number of real CFG edges carrying a nonzero increment — the
    /// spanning-tree-minimized instrumentation count.
    pub fn instrumented_edge_count(&self) -> usize {
        self.instrumented
    }

    /// Initial path-register value when a path starts at `block`.
    ///
    /// Returns `None` if `block` is not a valid path start (function entry
    /// or loop header).
    pub fn path_start(&self, block: LocalBlockId) -> Option<i128> {
        self.entry_inc
            .get(&block.index())
            .map(|inc| self.init + inc)
    }

    /// Runtime action for a dynamic transfer `from -> to` inside the
    /// function.
    ///
    /// Returns `None` when `from -> to` is not a CFG edge (callers should
    /// treat that as a bug).
    pub fn transfer(&self, from: LocalBlockId, to: LocalBlockId) -> Option<Transfer> {
        let key = (from.index(), to.index());
        if self.back_edges.contains_key(&key) {
            Some(Transfer::EndAndRestart {
                end_inc: *self.exit_inc.get(&key.0).expect("latch has exit inc"),
                restart: self.init + self.entry_inc[&key.1],
            })
        } else {
            self.edge_inc.get(&key).copied().map(Transfer::Advance)
        }
    }

    /// Final increment when the path ends because `block` leaves the
    /// function (`Return`/`Halt`). `None` if `block` cannot end a path this
    /// way.
    pub fn block_exit_inc(&self, block: LocalBlockId) -> Option<i128> {
        self.exit_inc.get(&block.index()).copied()
    }

    /// Encodes a complete forward path (from a path-start block to a
    /// path-end block, inclusive) into its path id.
    ///
    /// Returns `None` if the sequence is not a valid acyclic path.
    pub fn encode(&self, blocks: &[LocalBlockId]) -> Option<u128> {
        let first = blocks.first()?;
        let mut r = self.path_start(*first)?;
        for w in blocks.windows(2) {
            match self.transfer(w[0], w[1])? {
                Transfer::Advance(inc) => r += inc,
                Transfer::EndAndRestart { .. } => return None,
            }
        }
        let last = blocks.last()?;
        r += self.block_exit_inc(*last)?;
        u128::try_from(r).ok().filter(|&id| id < self.num_paths)
    }

    /// Decodes a path id into its block sequence (pseudo ENTRY/EXIT nodes
    /// excluded).
    ///
    /// Returns `None` if `id >= num_paths()`.
    pub fn decode(&self, id: u128) -> Option<Vec<LocalBlockId>> {
        if id >= self.num_paths {
            return None;
        }
        let mut blocks = Vec::new();
        let mut node = self.entry_node;
        let mut remaining = id;
        while node != self.exit_node {
            // Largest val <= remaining among successors (they are sorted).
            let succs = &self.dag_succs[node];
            let (next, val) = *succs
                .iter()
                .rev()
                .find(|&&(_, val)| (val as u128) <= remaining || val == 0)
                .expect("decode: no viable successor");
            remaining -= val as u128;
            node = next;
            if node != self.exit_node {
                blocks.push(LocalBlockId::new(node as u32));
            }
        }
        debug_assert_eq!(remaining, 0, "decode left a remainder");
        Some(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::program::BasicBlock;

    fn func(terms: Vec<Terminator>) -> Function {
        Function {
            name: "t".into(),
            blocks: terms
                .into_iter()
                .map(|t| BasicBlock::new(vec![], t))
                .collect(),
            num_regs: 8,
        }
    }

    fn l(i: u32) -> LocalBlockId {
        LocalBlockId::new(i)
    }

    fn br(c: u16, t: u32, f: u32) -> Terminator {
        Terminator::Branch {
            cond: Reg::new(c),
            taken: l(t),
            fallthrough: l(f),
        }
    }

    /// The diamond from Figure 1's spirit: 0 -> {1,2} -> 3 -> halt.
    #[test]
    fn diamond_has_two_paths() {
        let f = func(vec![
            br(0, 1, 2),
            Terminator::Jump(l(3)),
            Terminator::Jump(l(3)),
            Terminator::Halt,
        ]);
        let bl = BallLarus::new(&f).unwrap();
        assert_eq!(bl.num_paths(), 2);
        let p0 = bl.decode(0).unwrap();
        let p1 = bl.decode(1).unwrap();
        assert_ne!(p0, p1);
        assert_eq!(bl.encode(&p0), Some(0));
        assert_eq!(bl.encode(&p1), Some(1));
    }

    /// Figure 1 of the paper: a loop body with 5 acyclic paths.
    ///
    /// A(0) -> B(1) | C(2); B -> D(3); D -> G(4) | H(5); C -> E(6) | F(7);
    /// E -> I(8); F -> I; G -> J(9) (and G can end at a backward branch);
    /// H -> J; I -> J; J -> A (back edge).
    #[test]
    fn figure_one_loop_paths() {
        let f = func(vec![
            br(0, 1, 2),            // A
            Terminator::Jump(l(3)), // B
            br(1, 6, 7),            // C
            br(2, 4, 5),            // D
            Terminator::Jump(l(9)), // G
            Terminator::Jump(l(9)), // H
            Terminator::Jump(l(8)), // E
            Terminator::Jump(l(8)), // F
            Terminator::Jump(l(9)), // I
            br(3, 0, 10),           // J -> A back edge, or exit
            Terminator::Halt,       // exit
        ]);
        let bl = BallLarus::new(&f).unwrap();
        // Four A->..->J prefixes (ABDGJ, ABDHJ, ACEIJ, ACFIJ); each either
        // takes the back edge at J (J->EXIT pseudo) or falls through to the
        // halt block, so the acyclic path space has 4 * 2 = 8 paths.
        assert_eq!(bl.num_paths(), 8);
        round_trip_all(&bl);
    }

    fn round_trip_all(bl: &BallLarus) {
        let n = bl.num_paths();
        let mut seen = std::collections::HashSet::new();
        for id in 0..n {
            let blocks = bl.decode(id).expect("decodable");
            assert!(seen.insert(blocks.clone()), "duplicate path for id {id}");
            assert_eq!(bl.encode(&blocks), Some(id), "encode(decode({id}))");
        }
    }

    #[test]
    fn loop_with_if_else_runtime_simulation() {
        // 0: init -> 1 header; 1: branch body(2)/exit(5);
        // 2: branch 3 / 4; 3 -> 1 (latch); 4 -> 1 (latch); 5: halt.
        let f = func(vec![
            Terminator::Jump(l(1)),
            br(0, 2, 5),
            br(1, 3, 4),
            Terminator::Jump(l(1)),
            Terminator::Jump(l(1)),
            Terminator::Halt,
        ]);
        let bl = BallLarus::new(&f).unwrap();
        // Path starts: entry block 0 and header 1. Path ends: latches 3, 4
        // and halt 5.
        assert!(bl.path_start(l(0)).is_some());
        assert!(bl.path_start(l(1)).is_some());
        assert!(bl.path_start(l(2)).is_none());
        assert!(bl.block_exit_inc(l(3)).is_some());
        assert!(bl.block_exit_inc(l(5)).is_some());
        round_trip_all(&bl);

        // Simulate the dynamic sequence 0,1,2,3, 1,2,4, 1,5 and check that
        // the runtime register reproduces encode() of each path.
        let mut r = bl.path_start(l(0)).unwrap();
        for (from, to) in [(0u32, 1u32), (1, 2), (2, 3)] {
            match bl.transfer(l(from), l(to)).unwrap() {
                Transfer::Advance(inc) => r += inc,
                Transfer::EndAndRestart { .. } => panic!("unexpected end"),
            }
        }
        // 3 -> 1 is the back edge.
        let Transfer::EndAndRestart { end_inc, restart } = bl.transfer(l(3), l(1)).unwrap() else {
            panic!("expected back edge")
        };
        let id1 = u128::try_from(r + end_inc).unwrap();
        assert_eq!(
            bl.decode(id1).unwrap(),
            vec![l(0), l(1), l(2), l(3)],
            "first dynamic path"
        );
        let mut r = restart;
        for (from, to) in [(1u32, 2u32), (2, 4)] {
            match bl.transfer(l(from), l(to)).unwrap() {
                Transfer::Advance(inc) => r += inc,
                Transfer::EndAndRestart { .. } => panic!("unexpected end"),
            }
        }
        let Transfer::EndAndRestart { end_inc, restart } = bl.transfer(l(4), l(1)).unwrap() else {
            panic!("expected back edge")
        };
        let id2 = u128::try_from(r + end_inc).unwrap();
        assert_eq!(bl.decode(id2).unwrap(), vec![l(1), l(2), l(4)]);
        // Final path 1 -> 5 ends at halt.
        let mut r = restart;
        match bl.transfer(l(1), l(5)).unwrap() {
            Transfer::Advance(inc) => r += inc,
            Transfer::EndAndRestart { .. } => panic!("unexpected end"),
        }
        let id3 = u128::try_from(r + bl.block_exit_inc(l(5)).unwrap()).unwrap();
        assert_eq!(bl.decode(id3).unwrap(), vec![l(1), l(5)]);
        // All three dynamic paths are distinct.
        assert_ne!(id1, id2);
        assert_ne!(id2, id3);
        assert_ne!(id1, id3);
    }

    #[test]
    fn straight_line_single_path() {
        let f = func(vec![Terminator::Jump(l(1)), Terminator::Halt]);
        let bl = BallLarus::new(&f).unwrap();
        assert_eq!(bl.num_paths(), 1);
        assert_eq!(bl.decode(0).unwrap(), vec![l(0), l(1)]);
        assert_eq!(bl.instrumented_edge_count(), 0, "one path needs no probes");
    }

    #[test]
    fn switch_multiplies_paths() {
        let f = func(vec![
            Terminator::Switch {
                index: Reg::new(0),
                targets: vec![l(1), l(2), l(3)],
                default: l(4),
            },
            Terminator::Jump(l(5)),
            Terminator::Jump(l(5)),
            Terminator::Jump(l(5)),
            Terminator::Jump(l(5)),
            Terminator::Halt,
        ]);
        let bl = BallLarus::new(&f).unwrap();
        assert_eq!(bl.num_paths(), 4);
        round_trip_all(&bl);
    }

    #[test]
    fn nested_loops_are_numbered() {
        // outer: 1, inner: 2; 0->1->2->3, 3->2 latch, 3->4, 4->1 latch, 4->5
        let f = func(vec![
            Terminator::Jump(l(1)),
            Terminator::Jump(l(2)),
            Terminator::Jump(l(3)),
            br(0, 2, 4),
            br(1, 1, 5),
            Terminator::Halt,
        ]);
        let bl = BallLarus::new(&f).unwrap();
        round_trip_all(&bl);
        // Starts: 0, 1, 2; ends: 3 (latch), 4 (latch), 5 (halt).
        assert!(bl.path_start(l(2)).is_some());
        assert!(bl.block_exit_inc(l(4)).is_some());
    }

    #[test]
    fn self_loop_block() {
        let f = func(vec![br(0, 0, 1), Terminator::Halt]);
        let bl = BallLarus::new(&f).unwrap();
        // Paths: [0] ending at back edge, [0, 1] ending at halt.
        assert_eq!(bl.num_paths(), 2);
        round_trip_all(&bl);
        let t = bl.transfer(l(0), l(0)).unwrap();
        assert!(matches!(t, Transfer::EndAndRestart { .. }));
    }

    #[test]
    fn non_edge_transfer_is_none() {
        let f = func(vec![Terminator::Jump(l(1)), Terminator::Halt]);
        let bl = BallLarus::new(&f).unwrap();
        assert_eq!(bl.transfer(l(1), l(0)), None);
    }
}
