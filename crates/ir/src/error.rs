//! Error type for program construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`Program`](crate::Program).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IrError {
    /// A function has no blocks.
    EmptyFunction {
        /// Name of the offending function.
        function: String,
    },
    /// A block in the named function was created but never given a body via
    /// the builder.
    UnfinishedBlock {
        /// Name of the offending function.
        function: String,
        /// Index of the unfinished block.
        block: usize,
    },
    /// A terminator references a block index outside the function.
    BadBlockTarget {
        /// Name of the offending function.
        function: String,
        /// Block containing the bad terminator.
        block: usize,
        /// The out-of-range target index.
        target: usize,
    },
    /// A call references a function index outside the program.
    BadCallTarget {
        /// Name of the offending function.
        function: String,
        /// Block containing the bad call.
        block: usize,
        /// The out-of-range callee index.
        callee: usize,
    },
    /// An instruction references a register not in the function's frame.
    BadRegister {
        /// Name of the offending function.
        function: String,
        /// Block containing the bad instruction.
        block: usize,
        /// The out-of-range register index.
        reg: usize,
        /// Number of registers declared by the function.
        num_regs: usize,
    },
    /// The program's entry function id is out of range.
    BadEntry {
        /// The out-of-range entry index.
        entry: usize,
    },
    /// An initial-data entry addresses a word outside program memory.
    BadDataAddress {
        /// The out-of-range word address.
        address: usize,
        /// Memory size in words.
        memory_words: usize,
    },
    /// The program contains no functions.
    NoFunctions,
    /// Two functions share the same name.
    DuplicateFunctionName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::EmptyFunction { function } => {
                write!(f, "function `{function}` has no blocks")
            }
            IrError::UnfinishedBlock { function, block } => {
                write!(f, "block b{block} in `{function}` was never finished")
            }
            IrError::BadBlockTarget {
                function,
                block,
                target,
            } => write!(
                f,
                "terminator of b{block} in `{function}` targets nonexistent block b{target}"
            ),
            IrError::BadCallTarget {
                function,
                block,
                callee,
            } => write!(
                f,
                "call in b{block} of `{function}` targets nonexistent function fn{callee}"
            ),
            IrError::BadRegister {
                function,
                block,
                reg,
                num_regs,
            } => write!(
                f,
                "b{block} of `{function}` uses register r{reg} but the frame has {num_regs} registers"
            ),
            IrError::BadEntry { entry } => {
                write!(f, "entry function fn{entry} does not exist")
            }
            IrError::BadDataAddress {
                address,
                memory_words,
            } => write!(
                f,
                "initial data addresses word {address} but memory has {memory_words} words"
            ),
            IrError::NoFunctions => f.write_str("program contains no functions"),
            IrError::DuplicateFunctionName { name } => {
                write!(f, "duplicate function name `{name}`")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            IrError::EmptyFunction {
                function: "f".into(),
            },
            IrError::NoFunctions,
            IrError::BadEntry { entry: 9 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
