//! Natural-loop detection.
//!
//! A *back edge* is a CFG edge `latch -> header` whose header dominates the
//! latch; the natural loop of a back edge is the set of blocks that can
//! reach the latch without passing through the header. Loop headers are the
//! static analogue of the paper's "targets of backward taken branches" and
//! are used by tests to cross-check the dynamic path-head census.

use crate::cfg::{Cfg, Dominators};
use crate::ids::LocalBlockId;
use crate::program::Function;

/// One natural loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: LocalBlockId,
    /// Latches: sources of back edges into this header.
    pub latches: Vec<LocalBlockId>,
    /// All blocks in the loop body, including the header, sorted by index.
    pub body: Vec<LocalBlockId>,
}

impl NaturalLoop {
    /// True if the loop contains `block`.
    pub fn contains(&self, block: LocalBlockId) -> bool {
        self.body.binary_search(&block).is_ok()
    }
}

/// All natural loops of a function, merged per header.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Detects the natural loops of `func`.
    pub fn new(func: &Function) -> Self {
        let cfg = Cfg::new(func);
        let dom = Dominators::new(&cfg);
        Self::from_cfg(&cfg, &dom)
    }

    /// Detects natural loops from precomputed analyses.
    pub fn from_cfg(cfg: &Cfg, dom: &Dominators) -> Self {
        // Collect back edges grouped by header.
        let mut by_header: Vec<(LocalBlockId, Vec<LocalBlockId>)> = Vec::new();
        for &b in cfg.reverse_postorder() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => by_header.push((s, vec![b])),
                    }
                }
            }
        }
        let mut loops = Vec::with_capacity(by_header.len());
        for (header, latches) in by_header {
            let mut in_body = vec![false; cfg.block_count()];
            in_body[header.index()] = true;
            let mut stack: Vec<LocalBlockId> = Vec::new();
            for &latch in &latches {
                if !in_body[latch.index()] {
                    in_body[latch.index()] = true;
                    stack.push(latch);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if !in_body[p.index()] && cfg.is_reachable(p) {
                        in_body[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let body: Vec<LocalBlockId> = (0..cfg.block_count() as u32)
                .map(LocalBlockId::new)
                .filter(|b| in_body[b.index()])
                .collect();
            loops.push(NaturalLoop {
                header,
                latches,
                body,
            });
        }
        loops.sort_by_key(|l| l.header);
        LoopForest { loops }
    }

    /// The detected loops, ordered by header block index.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Number of distinct loop headers.
    pub fn header_count(&self) -> usize {
        self.loops.len()
    }

    /// The innermost loop containing `block`, by smallest body size.
    pub fn innermost_containing(&self, block: LocalBlockId) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(block))
            .min_by_key(|l| l.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::program::{BasicBlock, Terminator};

    fn func(terms: Vec<Terminator>) -> Function {
        Function {
            name: "t".into(),
            blocks: terms
                .into_iter()
                .map(|t| BasicBlock::new(vec![], t))
                .collect(),
            num_regs: 4,
        }
    }

    fn l(i: u32) -> LocalBlockId {
        LocalBlockId::new(i)
    }

    #[test]
    fn simple_loop() {
        // 0 -> 1(header) -> 2 -> 1, 2 -> 3
        let f = func(vec![
            Terminator::Jump(l(1)),
            Terminator::Jump(l(2)),
            Terminator::Branch {
                cond: Reg::new(0),
                taken: l(1),
                fallthrough: l(3),
            },
            Terminator::Halt,
        ]);
        let forest = LoopForest::new(&f);
        assert_eq!(forest.header_count(), 1);
        let lp = &forest.loops()[0];
        assert_eq!(lp.header, l(1));
        assert_eq!(lp.latches, vec![l(2)]);
        assert_eq!(lp.body, vec![l(1), l(2)]);
        assert!(lp.contains(l(1)));
        assert!(!lp.contains(l(3)));
    }

    #[test]
    fn nested_loops() {
        // 0 -> 1(outer hdr) -> 2(inner hdr) -> 3 -> 2 (inner latch),
        // 3 -> 4 -> 1 (outer latch), 4 -> 5 exit
        let f = func(vec![
            Terminator::Jump(l(1)),
            Terminator::Jump(l(2)),
            Terminator::Jump(l(3)),
            Terminator::Branch {
                cond: Reg::new(0),
                taken: l(2),
                fallthrough: l(4),
            },
            Terminator::Branch {
                cond: Reg::new(1),
                taken: l(1),
                fallthrough: l(5),
            },
            Terminator::Halt,
        ]);
        let forest = LoopForest::new(&f);
        assert_eq!(forest.header_count(), 2);
        let outer = forest.loops().iter().find(|lp| lp.header == l(1)).unwrap();
        let inner = forest.loops().iter().find(|lp| lp.header == l(2)).unwrap();
        assert_eq!(inner.body, vec![l(2), l(3)]);
        assert_eq!(outer.body, vec![l(1), l(2), l(3), l(4)]);
        assert_eq!(forest.innermost_containing(l(3)).unwrap().header, l(2));
        assert_eq!(forest.innermost_containing(l(4)).unwrap().header, l(1));
        assert!(forest.innermost_containing(l(5)).is_none());
    }

    #[test]
    fn self_loop() {
        let f = func(vec![
            Terminator::Branch {
                cond: Reg::new(0),
                taken: l(0),
                fallthrough: l(1),
            },
            Terminator::Halt,
        ]);
        let forest = LoopForest::new(&f);
        assert_eq!(forest.header_count(), 1);
        assert_eq!(forest.loops()[0].header, l(0));
        assert_eq!(forest.loops()[0].body, vec![l(0)]);
        assert_eq!(forest.loops()[0].latches, vec![l(0)]);
    }

    #[test]
    fn two_latches_merge_into_one_loop() {
        // 0(header) -> 1 -> 0 and 0 -> 2 -> 0; 1 -> 3 exit
        let f = func(vec![
            Terminator::Branch {
                cond: Reg::new(0),
                taken: l(1),
                fallthrough: l(2),
            },
            Terminator::Branch {
                cond: Reg::new(1),
                taken: l(0),
                fallthrough: l(3),
            },
            Terminator::Jump(l(0)),
            Terminator::Halt,
        ]);
        let forest = LoopForest::new(&f);
        assert_eq!(forest.header_count(), 1);
        let lp = &forest.loops()[0];
        assert_eq!(lp.header, l(0));
        assert_eq!(lp.latches.len(), 2);
        assert_eq!(lp.body, vec![l(0), l(1), l(2)]);
    }

    #[test]
    fn acyclic_function_has_no_loops() {
        let f = func(vec![Terminator::Jump(l(1)), Terminator::Halt]);
        assert_eq!(LoopForest::new(&f).header_count(), 0);
    }
}
