//! The straight-line instruction set executed inside basic blocks.

use std::fmt;

use crate::ids::{GlobalReg, Reg};

/// Binary arithmetic and bitwise operators.
///
/// All arithmetic is wrapping two's-complement on `i64`. Division and
/// remainder by zero are runtime errors reported by the VM; shifts mask
/// their amount to the low six bits, as hardware does.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating signed division. Division by zero is a VM error.
    Div,
    /// Signed remainder. Remainder by zero is a VM error.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Left shift; the shift amount is masked to `0..64`.
    Shl,
    /// Arithmetic right shift; the shift amount is masked to `0..64`.
    Shr,
    /// Minimum of the two operands.
    Min,
    /// Maximum of the two operands.
    Max,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Wrapping negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        })
    }
}

/// Comparison operators; results are `1` (true) or `0` (false).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two values.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        })
    }
}

/// A straight-line (non-control-flow) instruction.
///
/// Control flow lives exclusively in block [`Terminator`](crate::Terminator)s
/// so that the dynamic block stream is exactly the branch trace the paper's
/// profiling schemes observe.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `dst = value`
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = op src`
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = lhs op rhs`
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = lhs op imm`
    BinImm {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// `dst = (lhs op rhs) ? 1 : 0`
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = (lhs op imm) ? 1 : 0`
    CmpImm {
        /// Comparison operator.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// `dst = memory[addr + offset]`; out-of-bounds access is a VM error.
    Load {
        /// Destination register.
        dst: Reg,
        /// Register holding the base word address.
        addr: Reg,
        /// Constant word offset added to the base.
        offset: i64,
    },
    /// `memory[addr + offset] = src`; out-of-bounds access is a VM error.
    Store {
        /// Source register.
        src: Reg,
        /// Register holding the base word address.
        addr: Reg,
        /// Constant word offset added to the base.
        offset: i64,
    },
    /// `dst = globals[global]` — read a machine-global register.
    GetGlobal {
        /// Destination register.
        dst: Reg,
        /// Global register to read.
        global: GlobalReg,
    },
    /// `globals[global] = src` — write a machine-global register.
    SetGlobal {
        /// Source register.
        src: Reg,
        /// Global register to write.
        global: GlobalReg,
    },
}

impl Inst {
    /// Returns the register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::Const { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::BinImm { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::CmpImm { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::GetGlobal { dst, .. } => Some(dst),
            Inst::Store { .. } | Inst::SetGlobal { .. } => None,
        }
    }

    /// Appends the registers read by this instruction to `uses`.
    pub fn uses_into(&self, uses: &mut Vec<Reg>) {
        match *self {
            Inst::Const { .. } | Inst::GetGlobal { .. } => {}
            Inst::Mov { src, .. } | Inst::Un { src, .. } => uses.push(src),
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                uses.push(lhs);
                uses.push(rhs);
            }
            Inst::BinImm { lhs, .. } | Inst::CmpImm { lhs, .. } => uses.push(lhs),
            Inst::Load { addr, .. } => uses.push(addr),
            Inst::Store { src, addr, .. } => {
                uses.push(src);
                uses.push(addr);
            }
            Inst::SetGlobal { src, .. } => uses.push(src),
        }
    }

    /// Returns the registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.uses_into(&mut v);
        v
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Inst::Mov { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Un { op, dst, src } => write!(f, "{dst} = {op} {src}"),
            Inst::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Inst::BinImm { op, dst, lhs, imm } => write!(f, "{dst} = {op} {lhs}, #{imm}"),
            Inst::Cmp { op, dst, lhs, rhs } => write!(f, "{dst} = cmp.{op} {lhs}, {rhs}"),
            Inst::CmpImm { op, dst, lhs, imm } => write!(f, "{dst} = cmp.{op} {lhs}, #{imm}"),
            Inst::Load { dst, addr, offset } => write!(f, "{dst} = load [{addr}+{offset}]"),
            Inst::Store { src, addr, offset } => write!(f, "store [{addr}+{offset}] = {src}"),
            Inst::GetGlobal { dst, global } => write!(f, "{dst} = {global}"),
            Inst::SetGlobal { src, global } => write!(f, "{global} = {src}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_all_ops() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(CmpOp::Gt.eval(5, 4));
        assert!(CmpOp::Ge.eval(4, 4));
        assert!(!CmpOp::Ge.eval(3, 4));
    }

    #[test]
    fn def_and_uses() {
        let r0 = Reg::new(0);
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let add = Inst::Bin {
            op: BinOp::Add,
            dst: r0,
            lhs: r1,
            rhs: r2,
        };
        assert_eq!(add.def(), Some(r0));
        assert_eq!(add.uses(), vec![r1, r2]);

        let st = Inst::Store {
            src: r1,
            addr: r2,
            offset: 4,
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![r1, r2]);

        let cg = Inst::GetGlobal {
            dst: r0,
            global: GlobalReg::new(0),
        };
        assert_eq!(cg.def(), Some(r0));
        assert!(cg.uses().is_empty());
    }

    #[test]
    fn display_formats() {
        let r0 = Reg::new(0);
        let r1 = Reg::new(1);
        let i = Inst::BinImm {
            op: BinOp::Add,
            dst: r0,
            lhs: r1,
            imm: 7,
        };
        assert_eq!(i.to_string(), "r0 = add r1, #7");
        let c = Inst::CmpImm {
            op: CmpOp::Lt,
            dst: r0,
            lhs: r1,
            imm: 3,
        };
        assert_eq!(c.to_string(), "r0 = cmp.lt r1, #3");
    }
}
