//! Textual disassembly of programs, functions, and blocks.

use std::fmt::Write as _;

use crate::layout::Layout;
use crate::program::{Function, Program};

/// Renders a whole program as pseudo-assembly, one block per paragraph,
/// annotated with layout addresses when `layout` is provided.
pub fn program_to_string(program: &Program, layout: Option<&Layout>) -> String {
    let mut out = String::new();
    if program.memory_words > 0 {
        let _ = writeln!(out, "memory {}", program.memory_words);
    }
    for &(addr, value) in &program.data {
        let _ = writeln!(out, "data {addr} {value}");
    }
    if program.memory_words > 0 || !program.data.is_empty() {
        out.push('\n');
    }
    for (fi, func) in program.functions.iter().enumerate() {
        let marker = if fi == program.entry.index() {
            " (entry)"
        } else {
            ""
        };
        let _ = writeln!(out, "fn{} {}{}:", fi, func.name, marker);
        write_function(&mut out, func, fi, layout);
        out.push('\n');
    }
    out
}

/// Renders one function.
pub fn function_to_string(func: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}:", func.name);
    write_function(&mut out, func, usize::MAX, None);
    out
}

fn write_function(out: &mut String, func: &Function, func_index: usize, layout: Option<&Layout>) {
    for (bid, block) in func.iter_blocks() {
        let addr = layout
            .filter(|_| func_index != usize::MAX)
            .map(|l| {
                let gid = l.global_id(crate::ids::FuncId::new(func_index as u32), bid);
                format!(" @{}", l.address(gid))
            })
            .unwrap_or_default();
        let _ = writeln!(out, "  {bid}{addr}:");
        for inst in &block.insts {
            let _ = writeln!(out, "    {inst}");
        }
        let _ = writeln!(out, "    {}", block.terminator);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::inst::CmpOp;

    fn sample() -> Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let exit = fb.new_block();
        fb.const_(i, 3);
        let c = fb.cmp_imm(CmpOp::Gt, i, 0);
        fb.branch(c, exit, exit);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn renders_blocks_and_insts() {
        let p = sample();
        let s = program_to_string(&p, None);
        assert!(s.contains("fn0 main (entry):"));
        assert!(s.contains("r0 = const 3"));
        assert!(s.contains("halt"));
        assert!(s.contains("b0:"));
    }

    #[test]
    fn renders_addresses_with_layout() {
        let p = sample();
        let l = Layout::new(&p);
        let s = program_to_string(&p, Some(&l));
        assert!(s.contains("b0 @0:"));
    }

    #[test]
    fn function_to_string_standalone() {
        let p = sample();
        let s = function_to_string(&p.functions[0]);
        assert!(s.starts_with("main:"));
        assert!(s.contains("br r1 ? b1 : b1"));
    }
}
