//! Identifier newtypes for functions, blocks, and registers.

use std::fmt;

/// Identifies a [`Function`](crate::Function) within a [`Program`](crate::Program).
///
/// The wrapped index is the position of the function in
/// [`Program::functions`](crate::Program::functions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id from a raw index.
    pub const fn new(index: u32) -> Self {
        FuncId(index)
    }

    /// Returns the raw index into the program's function table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Identifies a [`BasicBlock`](crate::BasicBlock) *within one function*.
///
/// Local block ids are what [`Terminator`](crate::Terminator)s reference.
/// For a program-wide identifier see [`BlockId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LocalBlockId(u32);

impl LocalBlockId {
    /// Creates a local block id from a raw index.
    pub const fn new(index: u32) -> Self {
        LocalBlockId(index)
    }

    /// Returns the raw index into the function's block table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocalBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A program-wide block identifier assigned by [`Layout`](crate::Layout).
///
/// Global ids are dense (`0..layout.block_count()`), ordered by layout
/// address, and are what the VM event stream, the path extractor, and the
/// prediction schemes operate on — they play the role of code addresses in
/// the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a global block id from a raw index.
    pub const fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// Returns the raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw dense index as `u32`.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A virtual register local to one function's frame.
///
/// Each function declares how many registers its frame holds
/// ([`Function::num_regs`](crate::Function::num_regs)); registers are not
/// shared across calls.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u16);

impl Reg {
    /// Creates a register from a raw index.
    pub const fn new(index: u16) -> Self {
        Reg(index)
    }

    /// Returns the raw frame-slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One of the [`GlobalReg::COUNT`] machine-global registers.
///
/// Global registers survive across calls and are the calling convention of
/// the virtual machine: callers place arguments in globals, callees read
/// them and place results back.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GlobalReg(u8);

impl GlobalReg {
    /// Number of global registers provided by the VM.
    pub const COUNT: usize = 16;

    /// Creates a global register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= GlobalReg::COUNT`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < Self::COUNT,
            "global register index {index} out of range 0..{}",
            Self::COUNT
        );
        GlobalReg(index)
    }

    /// Returns the raw index into the VM's global register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        assert_eq!(FuncId::new(3).index(), 3);
        assert_eq!(LocalBlockId::new(7).index(), 7);
        assert_eq!(BlockId::new(11).index(), 11);
        assert_eq!(BlockId::new(11).as_u32(), 11);
        assert_eq!(Reg::new(2).index(), 2);
        assert_eq!(GlobalReg::new(5).index(), 5);
    }

    #[test]
    fn ids_display() {
        assert_eq!(FuncId::new(1).to_string(), "fn1");
        assert_eq!(LocalBlockId::new(2).to_string(), "b2");
        assert_eq!(BlockId::new(3).to_string(), "B3");
        assert_eq!(Reg::new(4).to_string(), "r4");
        assert_eq!(GlobalReg::new(5).to_string(), "g5");
    }

    #[test]
    #[should_panic(expected = "global register index")]
    fn global_reg_out_of_range_panics() {
        let _ = GlobalReg::new(16);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
        assert!(Reg::new(0) < Reg::new(1));
    }
}
