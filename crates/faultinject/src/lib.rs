//! Deterministic, seeded fault injection for the trace-execution engine.
//!
//! The trace backend's whole value proposition is that it is an *invisible*
//! optimization: `Vm::run_linked` must produce bit-identical results to
//! plain interpretation no matter how trace selection misbehaves. This
//! crate supplies the adversary. A [`FaultPlan`] assigns a probability to
//! each enumerated [`FaultPoint`]; a [`FaultInjector`] built from the plan
//! is threaded through the VM dispatch loop and fires faults from
//! per-point deterministic PRNG streams, so a failing run is exactly
//! reproducible from its seed.
//!
//! The injector is designed to be **zero-cost when disabled**: a
//! disabled injector is a `None` discriminant, and every hook site guards
//! its draw with [`FaultInjector::armed`] — one predictable branch on the
//! hot path, no RNG state touched.
//!
//! Recorder I/O faults are realized by [`FaultWriter`], an `io::Write`
//! adapter that injects write errors in front of any sink (used to test
//! the telemetry recorder's counted-drop degradation).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use hotpath_ir::rng::Rng64;

/// The enumerated places the engine can be made to fail.
///
/// Each point has its own independent PRNG stream inside a
/// [`FaultInjector`], so changing one point's probability never perturbs
/// the draw sequence of another.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultPoint {
    /// A trace guard that actually passed is treated as failed: the trace
    /// exits early toward the block it would have continued at.
    GuardFail,
    /// The whole trace cache is flushed (links severed, traces dropped)
    /// at the top of a dispatch iteration.
    Flush,
    /// A trace dispatch is denied as if the fuel precheck had failed,
    /// forcing the block to be interpreted instead.
    FuelStarve,
    /// A `TraceCommand::Install` from the engine is dropped before
    /// compilation, as if the trace had failed to compile.
    InstallReject,
    /// A recorder sink write fails ([`FaultWriter`] returns an I/O
    /// error), exercising the telemetry counted-drop path.
    RecorderIo,
    /// Trace execution panics at excursion entry, before any program
    /// state is mutated; the VM must catch it, poison the fragment, and
    /// resume interpreting with state intact.
    TracePanic,
    /// A response frame is written in two short chunks with a pause in
    /// between, exercising partial-write reassembly at the peer.
    WireTornWrite,
    /// The connection is torn down mid-frame: half a response frame is
    /// written and the socket closed, as if the peer had reset.
    WireReset,
    /// A response frame's length prefix is corrupted before it is
    /// written, desynchronizing the stream (the connection then closes).
    WireCorruptLen,
    /// One payload byte of a response frame is flipped before it is
    /// written; framing stays intact but the body fails to decode.
    WireCorruptPayload,
    /// The server stalls before writing a response, simulating a slow or
    /// wedged peer.
    WireStall,
    /// The server delays before reading the next request frame.
    WireDelayRead,
    /// A shard worker panics while handling a request; the supervisor
    /// must restart it and re-admit its sessions.
    ShardPanic,
    /// A profile publish is treated as coming from a poisoned session
    /// and is routed to the store's quarantine bucket.
    PublishPoison,
}

/// All fault points, in declaration order.
pub const FAULT_POINTS: [FaultPoint; 14] = [
    FaultPoint::GuardFail,
    FaultPoint::Flush,
    FaultPoint::FuelStarve,
    FaultPoint::InstallReject,
    FaultPoint::RecorderIo,
    FaultPoint::TracePanic,
    FaultPoint::WireTornWrite,
    FaultPoint::WireReset,
    FaultPoint::WireCorruptLen,
    FaultPoint::WireCorruptPayload,
    FaultPoint::WireStall,
    FaultPoint::WireDelayRead,
    FaultPoint::ShardPanic,
    FaultPoint::PublishPoison,
];

/// The six wire-level fault points, in declaration order (the connection
/// seam of the serve layer).
pub const WIRE_POINTS: [FaultPoint; 6] = [
    FaultPoint::WireTornWrite,
    FaultPoint::WireReset,
    FaultPoint::WireCorruptLen,
    FaultPoint::WireCorruptPayload,
    FaultPoint::WireStall,
    FaultPoint::WireDelayRead,
];

impl FaultPoint {
    /// Stable snake_case name, used in telemetry events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultPoint::GuardFail => "guard_fail",
            FaultPoint::Flush => "flush",
            FaultPoint::FuelStarve => "fuel_starve",
            FaultPoint::InstallReject => "install_reject",
            FaultPoint::RecorderIo => "recorder_io",
            FaultPoint::TracePanic => "trace_panic",
            FaultPoint::WireTornWrite => "wire_torn_write",
            FaultPoint::WireReset => "wire_reset",
            FaultPoint::WireCorruptLen => "wire_corrupt_len",
            FaultPoint::WireCorruptPayload => "wire_corrupt_payload",
            FaultPoint::WireStall => "wire_stall",
            FaultPoint::WireDelayRead => "wire_delay_read",
            FaultPoint::ShardPanic => "shard_panic",
            FaultPoint::PublishPoison => "publish_poison",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultPoint::GuardFail => 0,
            FaultPoint::Flush => 1,
            FaultPoint::FuelStarve => 2,
            FaultPoint::InstallReject => 3,
            FaultPoint::RecorderIo => 4,
            FaultPoint::TracePanic => 5,
            FaultPoint::WireTornWrite => 6,
            FaultPoint::WireReset => 7,
            FaultPoint::WireCorruptLen => 8,
            FaultPoint::WireCorruptPayload => 9,
            FaultPoint::WireStall => 10,
            FaultPoint::WireDelayRead => 11,
            FaultPoint::ShardPanic => 12,
            FaultPoint::PublishPoison => 13,
        }
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

const POINTS: usize = FAULT_POINTS.len();

/// A seeded assignment of firing probabilities to fault points.
///
/// The same plan always produces the same fault sequence at each hook
/// site, because each point draws from its own stream derived from
/// `seed`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; POINTS],
}

impl FaultPlan {
    /// A plan with every probability zero (injects nothing).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0.0; POINTS],
        }
    }

    /// Sets the firing probability of one point (clamped to `[0, 1]`).
    pub fn with(mut self, point: FaultPoint, rate: f64) -> Self {
        self.rates[point.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// A plan firing the four recoverable engine faults — guard failures,
    /// flushes, fuel starvation, install rejection — at a common rate.
    ///
    /// Recorder I/O and trace panics are left at zero: the former lives
    /// outside the VM dispatch loop and the latter is deliberately noisy
    /// (it unwinds), so both are opted into explicitly.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan::new(seed)
            .with(FaultPoint::GuardFail, rate)
            .with(FaultPoint::Flush, rate)
            .with(FaultPoint::FuelStarve, rate)
            .with(FaultPoint::InstallReject, rate)
    }

    /// A plan firing every wire-level fault — torn writes, mid-frame
    /// resets, corrupted length prefixes and payloads, stalls, delayed
    /// reads — at a common rate. Engine and shard faults stay zero.
    pub fn wire_uniform(seed: u64, rate: f64) -> Self {
        WIRE_POINTS
            .iter()
            .fold(FaultPlan::new(seed), |plan, &point| plan.with(point, rate))
    }

    /// The full serve-layer chaos plan: every wire fault plus shard
    /// panics and poisoned publishes at a common rate. Engine-internal
    /// faults stay zero — the serve layer injects at its own seams.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultPlan::wire_uniform(seed, rate)
            .with(FaultPoint::ShardPanic, rate)
            .with(FaultPoint::PublishPoison, rate)
    }

    /// The same rates under a sub-stream seed: mixes `salt` into the
    /// seed so each derived scope (a connection, a shard) draws its own
    /// deterministic fault sequence independent of its siblings.
    pub fn derive(&self, salt: u64) -> Self {
        let mut derived = *self;
        derived.seed = self
            .seed
            .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03))
            .rotate_left(17)
            ^ salt;
        derived
    }

    /// The seed the per-point streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The firing probability of `point`.
    pub fn rate(&self, point: FaultPoint) -> f64 {
        self.rates[point.index()]
    }

    /// True when every probability is zero (the plan can never fire).
    pub fn is_empty(&self) -> bool {
        self.rates.iter().all(|&r| r == 0.0)
    }
}

/// Per-point PRNG streams plus injection counters; boxed behind the
/// `Option` in [`FaultInjector`] so a disabled injector is one word.
#[derive(Clone, Debug)]
struct Armed {
    plan: FaultPlan,
    streams: [Rng64; POINTS],
    injected: [u64; POINTS],
}

/// The runtime half of a [`FaultPlan`]: owns the per-point streams and
/// counts what actually fired.
///
/// A disabled injector (from [`FaultInjector::disabled`] or an empty
/// plan) stores nothing and answers [`armed`](FaultInjector::armed) with
/// a constant `false` — the zero-cost-when-disabled contract every hook
/// site relies on.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    inner: Option<Box<Armed>>,
}

impl FaultInjector {
    /// An injector that never fires and costs one branch per hook site.
    pub fn disabled() -> Self {
        FaultInjector { inner: None }
    }

    /// Builds an injector from a plan; an all-zero plan yields a disabled
    /// injector.
    pub fn new(plan: FaultPlan) -> Self {
        if plan.is_empty() {
            return FaultInjector::disabled();
        }
        // Distinct per-point streams: golden-ratio stride over the seed.
        let mut i = 0u64;
        let streams = [(); POINTS].map(|()| {
            i += 1;
            Rng64::seed_from_u64(
                plan.seed
                    .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        });
        FaultInjector {
            inner: Some(Box::new(Armed {
                plan,
                streams,
                injected: [0; POINTS],
            })),
        }
    }

    /// True when the injector can fire at all. Hook sites check this
    /// first so a disabled injector costs a single predictable branch.
    #[inline(always)]
    pub fn armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Draws from `point`'s stream: true means "inject the fault here".
    /// Always false (and draws nothing) when disabled.
    #[inline]
    pub fn fire(&mut self, point: FaultPoint) -> bool {
        let Some(armed) = self.inner.as_deref_mut() else {
            return false;
        };
        let i = point.index();
        let rate = armed.plan.rates[i];
        if rate == 0.0 {
            return false;
        }
        let hit = armed.streams[i].gen_bool(rate);
        if hit {
            armed.injected[i] += 1;
        }
        hit
    }

    /// How many times `point` has fired.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |a| a.injected[point.index()])
    }

    /// Total faults fired across all points.
    pub fn total_injected(&self) -> u64 {
        self.inner.as_deref().map_or(0, |a| a.injected.iter().sum())
    }

    /// The plan this injector was built from, if armed.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.inner.as_deref().map(|a| &a.plan)
    }
}

/// An `io::Write` adapter that injects write failures in front of `inner`
/// according to the plan's [`FaultPoint::RecorderIo`] probability.
///
/// Used to prove the telemetry `JsonlRecorder` degrades to counted drops
/// instead of panicking or corrupting the run when its sink dies.
#[derive(Debug)]
pub struct FaultWriter<W> {
    inner: W,
    injector: FaultInjector,
}

impl<W> FaultWriter<W> {
    /// Wraps `inner`, failing writes per `plan`'s recorder-I/O rate.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        FaultWriter {
            inner,
            injector: FaultInjector::new(plan),
        }
    }

    /// How many writes have been failed so far.
    pub fn injected(&self) -> u64 {
        self.injector.injected(FaultPoint::RecorderIo)
    }

    /// Unwraps the underlying sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: std::io::Write> std::io::Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.injector.fire(FaultPoint::RecorderIo) {
            return Err(std::io::Error::other("injected recorder I/O fault"));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires_and_is_unarmed() {
        let mut inj = FaultInjector::disabled();
        assert!(!inj.armed());
        for point in FAULT_POINTS {
            assert!(!inj.fire(point));
            assert_eq!(inj.injected(point), 0);
        }
        assert_eq!(inj.total_injected(), 0);
        // An all-zero plan collapses to the same thing.
        assert!(!FaultInjector::new(FaultPlan::new(1)).armed());
        assert!(FaultInjector::default().inner.is_none());
    }

    #[test]
    fn same_plan_fires_the_same_sequence() {
        let plan = FaultPlan::uniform(42, 0.25).with(FaultPoint::TracePanic, 0.1);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for i in 0..2_000u64 {
            let point = FAULT_POINTS[(i % 6) as usize];
            assert_eq!(a.fire(point), b.fire(point), "draw {i} at {point}");
        }
        assert_eq!(a.total_injected(), b.total_injected());
        assert!(a.total_injected() > 0, "a 25% plan fires within 2k draws");
    }

    #[test]
    fn per_point_streams_are_independent() {
        // Drawing GuardFail must not perturb Flush's sequence.
        let plan = FaultPlan::uniform(7, 0.5);
        let mut lone = FaultInjector::new(plan);
        let lone_seq: Vec<bool> = (0..64).map(|_| lone.fire(FaultPoint::Flush)).collect();

        let mut mixed = FaultInjector::new(plan);
        let mixed_seq: Vec<bool> = (0..64)
            .map(|_| {
                let _ = mixed.fire(FaultPoint::GuardFail);
                mixed.fire(FaultPoint::Flush)
            })
            .collect();
        assert_eq!(lone_seq, mixed_seq);
    }

    #[test]
    fn rates_one_and_zero_are_exact() {
        let plan = FaultPlan::new(3)
            .with(FaultPoint::GuardFail, 1.0)
            .with(FaultPoint::Flush, 0.0);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..100 {
            assert!(inj.fire(FaultPoint::GuardFail));
            assert!(!inj.fire(FaultPoint::Flush));
        }
        assert_eq!(inj.injected(FaultPoint::GuardFail), 100);
        assert_eq!(inj.injected(FaultPoint::Flush), 0);
        assert_eq!(inj.total_injected(), 100);
    }

    #[test]
    fn plan_accessors_round_trip() {
        let plan = FaultPlan::new(9).with(FaultPoint::InstallReject, 2.0);
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.rate(FaultPoint::InstallReject), 1.0, "clamped");
        assert_eq!(plan.rate(FaultPoint::GuardFail), 0.0);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(9).is_empty());
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.plan(), Some(&plan));
    }

    #[test]
    fn wire_and_chaos_plans_arm_the_serve_points() {
        let wire = FaultPlan::wire_uniform(5, 0.25);
        for point in WIRE_POINTS {
            assert_eq!(wire.rate(point), 0.25, "{point}");
        }
        assert_eq!(wire.rate(FaultPoint::GuardFail), 0.0);
        assert_eq!(wire.rate(FaultPoint::ShardPanic), 0.0);
        let chaos = FaultPlan::chaos(5, 0.25);
        assert_eq!(chaos.rate(FaultPoint::ShardPanic), 0.25);
        assert_eq!(chaos.rate(FaultPoint::PublishPoison), 0.25);
        assert_eq!(chaos.rate(FaultPoint::TracePanic), 0.0);
    }

    #[test]
    fn derived_plans_are_deterministic_and_distinct_per_salt() {
        let base = FaultPlan::wire_uniform(42, 0.5);
        assert_eq!(base.derive(3), base.derive(3), "same salt, same plan");
        assert_ne!(base.derive(3).seed(), base.derive(4).seed());
        assert_eq!(base.derive(3).rate(FaultPoint::WireStall), 0.5);

        // Distinct salts draw distinct sequences from the same base plan.
        let mut a = FaultInjector::new(base.derive(1));
        let mut b = FaultInjector::new(base.derive(2));
        let seq_a: Vec<bool> = (0..64).map(|_| a.fire(FaultPoint::WireReset)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.fire(FaultPoint::WireReset)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn fault_writer_injects_errors_and_counts_them() {
        use std::io::Write;
        let plan = FaultPlan::new(11).with(FaultPoint::RecorderIo, 1.0);
        let mut w = FaultWriter::new(Vec::new(), plan);
        assert!(w.write_all(b"line\n").is_err());
        assert!(w.write_all(b"line\n").is_err());
        assert_eq!(w.injected(), 2);
        assert!(w.into_inner().is_empty(), "nothing reached the sink");

        let mut clean = FaultWriter::new(Vec::new(), FaultPlan::new(11));
        clean.write_all(b"ok").unwrap();
        clean.flush().unwrap();
        assert_eq!(clean.injected(), 0);
        assert_eq!(clean.into_inner(), b"ok");
    }
}
