//! τ-sweeps: the data series behind Figures 2 and 3.

use hotpath_profiles::{HotPathSet, PathStream, PathTable};

use crate::metrics::{evaluate, PredictionOutcome};
use crate::net::NetPredictor;
use crate::path_profile::PathProfilePredictor;
use crate::predictor::SchemeKind;

/// The prediction delays the paper sweeps ("ranging from 10 to 1,000,000"),
/// log-spaced.
pub const DEFAULT_DELAYS: [u64; 16] = [
    10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
    500_000, 1_000_000,
];

/// One point of a sweep: the outcome at one `(scheme, τ)` pair.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The prediction delay.
    pub delay: u64,
    /// The measured outcome.
    pub outcome: PredictionOutcome,
}

/// Evaluates `scheme` over `stream` at each delay in `delays`, returning
/// one [`SweepPoint`] per delay (in the given order).
///
/// # Panics
///
/// Panics if `scheme` is not [`SchemeKind::Net`] or
/// [`SchemeKind::PathProfile`] — the sweepable schemes of the paper.
pub fn sweep(
    stream: &PathStream,
    table: &PathTable,
    hot: &HotPathSet,
    scheme: SchemeKind,
    delays: &[u64],
) -> Vec<SweepPoint> {
    delays
        .iter()
        .map(|&delay| {
            let outcome = match scheme {
                SchemeKind::Net => evaluate(stream, table, hot, &mut NetPredictor::new(delay)),
                SchemeKind::PathProfile => {
                    evaluate(stream, table, hot, &mut PathProfilePredictor::new(delay))
                }
                other => panic!("sweep supports NET and PathProfile, not {other}"),
            };
            SweepPoint { delay, outcome }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    use hotpath_profiles::{PathExtractor, StreamingSink};
    use hotpath_vm::Vm;

    fn record(trip: i64) -> (PathStream, PathTable) {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let mut ex = PathExtractor::new(StreamingSink::new());
        Vm::new(&p).run(&mut ex).unwrap();
        let (sink, table) = ex.into_parts();
        (sink.into_stream(), table)
    }

    #[test]
    fn sweep_produces_one_point_per_delay() {
        let (stream, table) = record(10_000);
        let hot = stream.to_profile().hot_set(0.001);
        let delays = [10u64, 100, 1_000];
        let points = sweep(&stream, &table, &hot, SchemeKind::Net, &delays);
        assert_eq!(points.len(), 3);
        for (pt, &d) in points.iter().zip(&delays) {
            assert_eq!(pt.delay, d);
            assert_eq!(pt.outcome.delay, d);
        }
        // Profiled flow grows with τ.
        assert!(points[0].outcome.profiled_flow <= points[1].outcome.profiled_flow);
        assert!(points[1].outcome.profiled_flow <= points[2].outcome.profiled_flow);
    }

    #[test]
    fn both_schemes_sweep() {
        let (stream, table) = record(1_000);
        let hot = stream.to_profile().hot_set(0.001);
        for scheme in [SchemeKind::Net, SchemeKind::PathProfile] {
            let pts = sweep(&stream, &table, &hot, scheme, &[10, 100]);
            assert_eq!(pts.len(), 2);
            assert_eq!(pts[0].outcome.scheme, scheme);
        }
    }

    #[test]
    #[should_panic(expected = "sweep supports")]
    fn unsupported_scheme_panics() {
        let (stream, table) = record(100);
        let hot = stream.to_profile().hot_set(0.001);
        let _ = sweep(&stream, &table, &hot, SchemeKind::FirstExecution, &[10]);
    }

    #[test]
    fn default_delays_are_sorted_and_span_paper_range() {
        assert_eq!(*DEFAULT_DELAYS.first().unwrap(), 10);
        assert_eq!(*DEFAULT_DELAYS.last().unwrap(), 1_000_000);
        assert!(DEFAULT_DELAYS.windows(2).all(|w| w[0] < w[1]));
    }
}
