//! Phase-sensitive prediction metrics with a path-retirement model — the
//! extension the paper names as future work (§6.1, §8):
//!
//! > *We plan to extend our path metrics to model path removal from the
//! > prediction set. With a path removal model we obtain an abstract
//! > measure to evaluate how well a prediction scheme reacts to phase
//! > changes and how well it handles phase-induced noise.*
//!
//! [`evaluate_phased`] replays a recorded stream like
//! [`evaluate`](crate::evaluate), but (a) measures hits and noise against
//! *windowed* hot sets — a path is hot in a window if its frequency within
//! the window clears the threshold — and (b) retires predicted paths that
//! go unused for [`RetirePolicy::idle_window`] executions, re-admitting
//! them only after a fresh prediction. Retired-but-then-executed flow is
//! *phase-induced noise avoided*; predictions evicted while still hot are
//! the heuristic's collateral damage. Both are reported.

use hotpath_profiles::{PathStream, PathTable};

use crate::predictor::{HotPathPredictor, SchemeKind};

/// When to retire a predicted path from the prediction set.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RetirePolicy {
    /// A predicted path is retired after this many total path executions
    /// pass without it executing (the path has gone cold).
    pub idle_window: u64,
}

impl Default for RetirePolicy {
    fn default() -> Self {
        RetirePolicy {
            idle_window: 100_000,
        }
    }
}

/// Outcome of a phase-sensitive evaluation.
#[derive(Clone, Debug)]
pub struct PhasedOutcome {
    /// Scheme evaluated.
    pub scheme: SchemeKind,
    /// Prediction delay τ.
    pub delay: u64,
    /// Retirement policy used.
    pub policy: RetirePolicy,
    /// Window length (in path executions) used for the windowed hot sets.
    pub window: u64,
    /// Total flow.
    pub total_flow: u64,
    /// Executions covered by a live prediction that were hot *in their
    /// window*.
    pub hits: u64,
    /// Executions covered by a live prediction that were cold in their
    /// window — phase-induced and plain noise together.
    pub noise: u64,
    /// Executions not covered (profiled or post-retirement).
    pub uncovered: u64,
    /// Noise avoided by retirement: executions of retired paths that were
    /// cold in their window (would have been noise had the path stayed).
    pub noise_avoided: u64,
    /// Hits lost to retirement: executions of retired paths that were hot
    /// in their window.
    pub hits_lost: u64,
    /// Paths retired, total (re-predictions can retire again).
    pub retirements: u64,
    /// Predictions made, total.
    pub predictions: u64,
}

impl PhasedOutcome {
    /// Windowed hit rate: hits / (hits + hits_lost + uncovered hot flow)
    /// is not recoverable without a second pass, so the headline ratio is
    /// hits as a share of covered flow.
    pub fn coverage_precision(&self) -> f64 {
        let covered = self.hits + self.noise;
        if covered == 0 {
            0.0
        } else {
            self.hits as f64 / covered as f64 * 100.0
        }
    }

    /// Share of the total flow covered by live predictions.
    pub fn covered_flow_pct(&self) -> f64 {
        if self.total_flow == 0 {
            0.0
        } else {
            (self.hits + self.noise) as f64 / self.total_flow as f64 * 100.0
        }
    }
}

/// Replays `stream` with windowed hot sets and path retirement.
///
/// Memory: the windowed frequency matrix is `O(windows × paths)`; for
/// path-heavy benchmarks keep the window coarse.
///
/// `window` is the phase granularity in path executions; a path is hot in
/// a window if it executes at least `hot_fraction * window` times within
/// it. The final partial window is evaluated pro rata.
///
/// # Panics
///
/// Panics if `window == 0` or `hot_fraction` is not in `(0, 1]`.
pub fn evaluate_phased<P: HotPathPredictor>(
    stream: &PathStream,
    table: &PathTable,
    predictor: &mut P,
    window: u64,
    hot_fraction: f64,
    policy: RetirePolicy,
) -> PhasedOutcome {
    assert!(window > 0, "window must be positive");
    assert!(policy.idle_window > 0, "idle window must be positive");
    assert!(
        hot_fraction > 0.0 && hot_fraction <= 1.0,
        "hot fraction must be in (0, 1]"
    );

    let n = stream.len();
    let npaths = table.len();
    // Pass 1: per-window frequency, to define windowed hot sets.
    let nwindows = n.div_ceil(window as usize).max(1);
    let mut win_freq = vec![0u32; nwindows * npaths];
    for i in 0..n {
        let wdx = i / window as usize;
        win_freq[wdx * npaths + stream.path(i).index()] += 1;
    }
    let hot_in = |wdx: usize, path: usize| {
        let wlen = if wdx + 1 == nwindows && n % window as usize != 0 {
            (n % window as usize) as f64
        } else {
            window as f64
        };
        win_freq[wdx * npaths + path] as f64 >= hot_fraction * wlen
    };

    // Pass 2: replay with prediction + retirement.
    let mut predicted_at = vec![u64::MAX; npaths]; // MAX = not predicted
    let mut last_used = vec![0u64; npaths];
    let mut out = PhasedOutcome {
        scheme: predictor.scheme(),
        delay: predictor.delay(),
        policy,
        window,
        total_flow: n as u64,
        hits: 0,
        noise: 0,
        uncovered: 0,
        noise_avoided: 0,
        hits_lost: 0,
        retirements: 0,
        predictions: 0,
    };
    let mut live: Vec<u32> = Vec::new(); // predicted path ids, scanned for retirement
    for i in 0..n {
        let now = i as u64;
        let id = stream.path(i);
        let idx = id.index();
        let wdx = i / window as usize;

        // Retire stale predictions (amortized scan every window boundary).
        if now % policy.idle_window.min(window) == 0 && !live.is_empty() {
            live.retain(|&p| {
                let pi = p as usize;
                if predicted_at[pi] != u64::MAX && now - last_used[pi] > policy.idle_window {
                    predicted_at[pi] = u64::MAX;
                    out.retirements += 1;
                    false
                } else {
                    predicted_at[pi] != u64::MAX
                }
            });
        }

        if predicted_at[idx] != u64::MAX {
            last_used[idx] = now;
            if hot_in(wdx, idx) {
                out.hits += 1;
            } else {
                out.noise += 1;
            }
            continue;
        }
        // Not covered: was it retired earlier (i.e., predicted before)?
        if last_used[idx] != 0 && predicted_at[idx] == u64::MAX && out.retirements > 0 {
            if hot_in(wdx, idx) {
                out.hits_lost += 1;
            } else {
                out.noise_avoided += 1;
            }
        }
        out.uncovered += 1;
        let exec = stream.execution(i, table);
        if let Some(p) = predictor.observe(&exec) {
            let pi = p.index();
            predicted_at[pi] = now;
            last_used[pi] = now;
            live.push(pi as u32);
            out.predictions += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetPredictor;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    use hotpath_profiles::{PathExtractor, StreamingSink};
    use hotpath_vm::Vm;

    /// Two sequential loops: phase 1 runs path A hot, phase 2 runs path B
    /// hot; A never executes again after the transition.
    fn two_phase_program(trip: i64) -> hotpath_ir::Program {
        let mut fb = FunctionBuilder::new("main");
        for _ in 0..2 {
            let i = fb.reg();
            let header = fb.new_block();
            let body = fb.new_block();
            let exit = fb.new_block();
            fb.const_(i, 0);
            fb.jump(header);
            fb.switch_to(header);
            let c = fb.cmp_imm(CmpOp::Lt, i, trip);
            fb.branch(c, body, exit);
            fb.switch_to(body);
            fb.add_imm(i, i, 1);
            fb.jump(header);
            fb.switch_to(exit);
        }
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    fn record(p: &hotpath_ir::Program) -> (PathStream, PathTable) {
        let mut ex = PathExtractor::new(StreamingSink::new());
        Vm::new(p).run(&mut ex).unwrap();
        let (sink, table) = ex.into_parts();
        (sink.into_stream(), table)
    }

    #[test]
    fn phased_accounting_partitions_flow() {
        let p = two_phase_program(20_000);
        let (stream, table) = record(&p);
        let out = evaluate_phased(
            &stream,
            &table,
            &mut NetPredictor::new(50),
            5_000,
            0.001,
            RetirePolicy { idle_window: 2_000 },
        );
        assert_eq!(out.hits + out.noise + out.uncovered, out.total_flow);
        assert!(out.predictions >= 2, "both phases' paths get predicted");
        assert!(out.covered_flow_pct() > 90.0);
        assert!(out.coverage_precision() > 90.0);
    }

    #[test]
    fn retirement_fires_after_phase_transition() {
        let p = two_phase_program(50_000);
        let (stream, table) = record(&p);
        let out = evaluate_phased(
            &stream,
            &table,
            &mut NetPredictor::new(20),
            10_000,
            0.001,
            RetirePolicy { idle_window: 5_000 },
        );
        // Phase 1's path goes idle for the whole second phase: retired.
        assert!(out.retirements >= 1, "phase-1 path must retire");
    }

    #[test]
    fn no_retirement_with_huge_idle_window() {
        let p = two_phase_program(5_000);
        let (stream, table) = record(&p);
        let out = evaluate_phased(
            &stream,
            &table,
            &mut NetPredictor::new(20),
            1_000,
            0.001,
            RetirePolicy {
                idle_window: u64::MAX,
            },
        );
        assert_eq!(out.retirements, 0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let p = two_phase_program(100);
        let (stream, table) = record(&p);
        let _ = evaluate_phased(
            &stream,
            &table,
            &mut NetPredictor::new(5),
            0,
            0.001,
            RetirePolicy::default(),
        );
    }
}
