//! NET hot-path prediction and the abstract prediction metrics of
//! Duesterwald & Bala, *Software Profiling for Hot Path Prediction: Less is
//! More* (ASPLOS 2000).
//!
//! This crate is the paper's primary contribution, rebuilt:
//!
//! * [`HotPathPredictor`] — the online prediction interface: observe path
//!   executions, occasionally predict one as hot;
//! * [`NetPredictor`] — **Next Executing Tail** prediction (§4.1): a counter
//!   per *path head* (target of a backward taken branch); when a head's
//!   counter reaches the prediction delay τ, the very next executing path
//!   from that head — the one executing right now — is speculatively
//!   predicted hot;
//! * [`PathProfilePredictor`] — path-profile based prediction (§4): full
//!   per-path counters (bit-traced signatures); a path is predicted when its
//!   own frequency reaches τ;
//! * [`FirstExecutionPredictor`] — the τ=0 degenerate that predicts every
//!   path on first sight, the paper's argument for why hit rate alone is a
//!   vacuous objective;
//! * [`evaluate`] / [`PredictionOutcome`] — the abstract metrics of §3:
//!   hit rate, noise rate, missed opportunity cost, and profiled/predicted
//!   flow, computed event-exactly over a recorded [`PathStream`](hotpath_profiles::PathStream);
//! * [`sweep`] — τ-sweeps producing the hit-rate/profiled-flow and
//!   noise-rate/profiled-flow series of Figures 2 and 3.
//!
//! # Example
//!
//! ```
//! use hotpath_core::{evaluate, NetPredictor, SchemeKind};
//! use hotpath_profiles::{PathExtractor, StreamingSink};
//! use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
//! use hotpath_ir::CmpOp;
//! use hotpath_vm::Vm;
//!
//! // A counted loop: one hot path.
//! let mut fb = FunctionBuilder::new("main");
//! let i = fb.reg();
//! let header = fb.new_block();
//! let body = fb.new_block();
//! let exit = fb.new_block();
//! fb.const_(i, 0);
//! fb.jump(header);
//! fb.switch_to(header);
//! let c = fb.cmp_imm(CmpOp::Lt, i, 10_000);
//! fb.branch(c, body, exit);
//! fb.switch_to(body);
//! fb.add_imm(i, i, 1);
//! fb.jump(header);
//! fb.switch_to(exit);
//! fb.halt();
//! let mut pb = ProgramBuilder::new();
//! pb.add_function(fb)?;
//! let program = pb.finish()?;
//!
//! // Record the path stream once.
//! let mut ex = PathExtractor::new(StreamingSink::new());
//! Vm::new(&program).run(&mut ex)?;
//! let (sink, table) = ex.into_parts();
//! let stream = sink.into_stream();
//!
//! // Evaluate NET prediction at τ = 50 against the 0.1% hot set.
//! let hot = stream.to_profile().hot_set(0.001);
//! let outcome = evaluate(&stream, &table, &hot, &mut NetPredictor::new(50));
//! assert!(outcome.hit_rate() > 99.0);
//! assert_eq!(outcome.scheme, SchemeKind::Net);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod boa;
mod metrics;
mod net;
mod path_profile;
mod phased;
mod predictor;
mod sweep;

pub use boa::{BoaSelector, BOA_TRACE_CAP};
pub use hotpath_ir::fasthash;
/// The workspace's single deterministic PRNG (splitmix64-seeded
/// xoshiro256++), re-exported so every consumer — fault plans, the
/// differential fuzzer's program generator, the serving load generator —
/// draws from one implementation instead of growing private copies.
pub use hotpath_ir::rng;
pub use metrics::{evaluate, PredictionOutcome};
pub use net::NetPredictor;
pub use path_profile::PathProfilePredictor;
pub use phased::{evaluate_phased, PhasedOutcome, RetirePolicy};
pub use predictor::{FirstExecutionPredictor, HotPathPredictor, SchemeKind};
pub use sweep::{sweep, SweepPoint, DEFAULT_DELAYS};
