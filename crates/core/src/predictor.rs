//! The online prediction interface.

use std::fmt;

use hotpath_profiles::{PathExecution, PathId, ProfilingCost};

/// Which prediction scheme an outcome belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SchemeKind {
    /// Next Executing Tail prediction (§4.1).
    Net,
    /// Path-profile based prediction (§4).
    PathProfile,
    /// Predict-on-first-execution degenerate baseline.
    FirstExecution,
    /// Any other scheme (extensions).
    Other,
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchemeKind::Net => "NET",
            SchemeKind::PathProfile => "PathProfile",
            SchemeKind::FirstExecution => "FirstExecution",
            SchemeKind::Other => "Other",
        })
    }
}

/// An online hot-path prediction scheme.
///
/// The evaluator feeds every *not-yet-predicted* path execution to
/// [`observe`](HotPathPredictor::observe); returning `Some(path)` declares
/// that path hot from this instant on. (Executions of already-predicted
/// paths run out of the code cache in a real system and bypass profiling.)
pub trait HotPathPredictor {
    /// Observes one path execution; returns a prediction if this
    /// observation triggers one.
    fn observe(&mut self, exec: &PathExecution) -> Option<PathId>;

    /// The scheme's identity, for reporting.
    fn scheme(&self) -> SchemeKind;

    /// The prediction delay τ this instance runs with.
    fn delay(&self) -> u64;

    /// Number of profiling counters currently allocated — the space cost
    /// compared in Figure 4.
    fn counter_space(&self) -> usize;

    /// Runtime profiling operations performed so far — the time cost the
    /// paper's §4 overhead argument is about.
    fn cost(&self) -> ProfilingCost;

    /// Clears all counters and predictions (e.g. on a Dynamo cache flush).
    fn reset(&mut self);
}

impl<P: HotPathPredictor + ?Sized> HotPathPredictor for &mut P {
    fn observe(&mut self, exec: &PathExecution) -> Option<PathId> {
        (**self).observe(exec)
    }

    fn scheme(&self) -> SchemeKind {
        (**self).scheme()
    }

    fn delay(&self) -> u64 {
        (**self).delay()
    }

    fn counter_space(&self) -> usize {
        (**self).counter_space()
    }

    fn cost(&self) -> ProfilingCost {
        (**self).cost()
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

/// Predicts every path the first time it executes (τ = 0).
///
/// The paper uses this degenerate to motivate the noise metric: it
/// maximizes hit rate — nothing is ever missed — while also maximizing
/// noise, since every cold path is "predicted" too.
#[derive(Clone, Default, Debug)]
pub struct FirstExecutionPredictor {
    predicted: Vec<bool>,
    count: usize,
}

impl FirstExecutionPredictor {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HotPathPredictor for FirstExecutionPredictor {
    fn observe(&mut self, exec: &PathExecution) -> Option<PathId> {
        let i = exec.path.index();
        if i >= self.predicted.len() {
            self.predicted.resize(i + 1, false);
        }
        if self.predicted[i] {
            return None;
        }
        self.predicted[i] = true;
        self.count += 1;
        Some(exec.path)
    }

    fn scheme(&self) -> SchemeKind {
        SchemeKind::FirstExecution
    }

    fn delay(&self) -> u64 {
        0
    }

    fn counter_space(&self) -> usize {
        0
    }

    fn cost(&self) -> ProfilingCost {
        ProfilingCost::new()
    }

    fn reset(&mut self) {
        self.predicted.clear();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::BlockId;
    use hotpath_profiles::{PathEndKind, PathStartKind};

    fn exec(id: u32) -> PathExecution {
        PathExecution {
            path: PathId::new(id),
            head: BlockId::new(0),
            start: PathStartKind::BackwardTarget,
            end: PathEndKind::BackwardBranch,
            blocks: 2,
            insts: 4,
        }
    }

    #[test]
    fn first_execution_predicts_each_path_once() {
        let mut p = FirstExecutionPredictor::new();
        assert_eq!(p.observe(&exec(3)), Some(PathId::new(3)));
        assert_eq!(p.observe(&exec(3)), None);
        assert_eq!(p.observe(&exec(1)), Some(PathId::new(1)));
        p.reset();
        assert_eq!(p.observe(&exec(3)), Some(PathId::new(3)));
    }

    #[test]
    fn scheme_display() {
        assert_eq!(SchemeKind::Net.to_string(), "NET");
        assert_eq!(SchemeKind::PathProfile.to_string(), "PathProfile");
    }
}
