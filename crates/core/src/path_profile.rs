//! Path-profile based prediction — paper §4.
//!
//! The straightforward adaptation of an offline path profiling scheme to
//! online prediction: profile every path (bit-traced signature → counter)
//! and predict a path as hot as soon as its own execution frequency reaches
//! the prediction delay τ.
//!
//! The runtime price is what the paper argues against: one history-shift
//! per conditional branch and one indirect-target record per indirect
//! transfer on *every* profiled path execution, one path-table update per
//! path end, and one counter per dynamic path — potentially exponential in
//! program size (§4, §5.2).

use hotpath_ir::dense::CounterTable;
use hotpath_profiles::{PathExecution, PathId, ProfilingCost};

use crate::predictor::{HotPathPredictor, SchemeKind};

/// The path-profile based predictor.
///
/// # Example
///
/// ```
/// use hotpath_core::{HotPathPredictor, PathProfilePredictor};
/// let mut pp = PathProfilePredictor::new(50);
/// assert_eq!(pp.delay(), 50);
/// ```
#[derive(Clone, Debug)]
pub struct PathProfilePredictor {
    delay: u64,
    /// Per-path counters, dense by path index: the extractor interns path
    /// ids contiguously, so the table-update hot loop is one indexed load.
    counts: CounterTable,
    cost: ProfilingCost,
    predictions: usize,
}

impl PathProfilePredictor {
    /// Creates a predictor with prediction delay `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0`; use
    /// [`FirstExecutionPredictor`](crate::FirstExecutionPredictor) for the
    /// τ=0 degenerate.
    pub fn new(delay: u64) -> Self {
        assert!(delay > 0, "prediction delay must be positive");
        PathProfilePredictor {
            delay,
            counts: CounterTable::new(),
            cost: ProfilingCost::new(),
            predictions: 0,
        }
    }

    /// Number of predictions made so far.
    pub fn predictions(&self) -> usize {
        self.predictions
    }

    /// Profiled frequency of a path so far.
    pub fn path_count(&self, path: PathId) -> u64 {
        self.counts.get(path.index() as u32)
    }
}

impl HotPathPredictor for PathProfilePredictor {
    fn observe(&mut self, exec: &PathExecution) -> Option<PathId> {
        // Bit tracing pays per-branch costs while the path executes...
        self.cost.history_shifts += exec.blocks.saturating_sub(1) as u64;
        // (conservatively: one shift per transfer on the path; the paper's
        // "every branch execution requires the shifting of a bit")
        // ...and a table update when the path completes.
        self.cost.table_updates += 1;
        let count = self.counts.slot(exec.path.index() as u32);
        *count += 1;
        if *count >= self.delay {
            // A path is fed to `observe` only until predicted, so reaching
            // the threshold predicts exactly once.
            self.predictions += 1;
            hotpath_telemetry::emit!(hotpath_telemetry::Event::TauTrigger {
                scheme: "path_profile",
                head: exec.head.as_u32(),
                tau: self.delay,
                observed: self.cost.table_updates,
            });
            Some(exec.path)
        } else {
            None
        }
    }

    fn scheme(&self) -> SchemeKind {
        SchemeKind::PathProfile
    }

    fn delay(&self) -> u64 {
        self.delay
    }

    fn counter_space(&self) -> usize {
        self.counts.live()
    }

    fn cost(&self) -> ProfilingCost {
        self.cost
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.cost = ProfilingCost::new();
        self.predictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::BlockId;
    use hotpath_profiles::{PathEndKind, PathStartKind};

    fn exec(path: u32) -> PathExecution {
        PathExecution {
            path: PathId::new(path),
            head: BlockId::new(0),
            start: PathStartKind::BackwardTarget,
            end: PathEndKind::BackwardBranch,
            blocks: 4,
            insts: 8,
        }
    }

    #[test]
    fn predicts_at_exactly_tau_executions() {
        let mut pp = PathProfilePredictor::new(3);
        assert_eq!(pp.observe(&exec(5)), None);
        assert_eq!(pp.observe(&exec(5)), None);
        assert_eq!(pp.observe(&exec(5)), Some(PathId::new(5)));
        assert_eq!(pp.path_count(PathId::new(5)), 3);
        assert_eq!(pp.predictions(), 1);
    }

    #[test]
    fn paths_count_independently() {
        let mut pp = PathProfilePredictor::new(2);
        assert_eq!(pp.observe(&exec(0)), None);
        assert_eq!(pp.observe(&exec(1)), None);
        assert_eq!(pp.observe(&exec(0)), Some(PathId::new(0)));
        assert_eq!(pp.observe(&exec(1)), Some(PathId::new(1)));
        assert_eq!(pp.counter_space(), 2);
    }

    #[test]
    fn counts_every_start_kind() {
        // Unlike NET, path-profile prediction counts entry and continuation
        // starts too: every completed path updates the table.
        let mut pp = PathProfilePredictor::new(2);
        let mut e = exec(0);
        e.start = PathStartKind::Continuation;
        assert_eq!(pp.observe(&e), None);
        e.start = PathStartKind::Entry;
        assert_eq!(pp.observe(&e), Some(PathId::new(0)));
    }

    #[test]
    fn cost_scales_with_path_length() {
        let mut pp = PathProfilePredictor::new(100);
        pp.observe(&exec(0)); // blocks = 4 -> 3 shifts
        pp.observe(&exec(0));
        assert_eq!(pp.cost().history_shifts, 6);
        assert_eq!(pp.cost().table_updates, 2);
    }

    #[test]
    fn reset_clears_counts() {
        let mut pp = PathProfilePredictor::new(1);
        pp.observe(&exec(0));
        pp.reset();
        assert_eq!(pp.counter_space(), 0);
        assert_eq!(pp.predictions(), 0);
        assert_eq!(pp.path_count(PathId::new(0)), 0);
    }

    #[test]
    #[should_panic(expected = "prediction delay")]
    fn zero_delay_panics() {
        let _ = PathProfilePredictor::new(0);
    }
}
