//! Next Executing Tail (NET) prediction — paper §4.1.
//!
//! NET splits a path into its *head* (the starting block, a target of a
//! backward taken branch) and its *tail* (everything after). Profiling is
//! reduced to a single execution counter per head; tails are never
//! profiled. When a head's counter reaches the prediction delay τ, the
//! program is evidently executing in a hot region, and the *next executing
//! tail* — the path running at that very moment — is speculatively
//! predicted as the region's hot path.
//!
//! A head's counter does not retire after its first prediction: it resets
//! and keeps counting the arrivals that are *not* covered by an existing
//! prediction, so a head whose flow splits over a few paths predicts its
//! next-hottest tail after another τ uncovered arrivals. This is exactly
//! how deployed NET behaves — in Dynamo, once a trace is installed, the
//! counting moves to the trace's exit stubs, which are reached precisely
//! by the uncovered arrivals. (The evaluation protocol feeds predictors
//! only executions of not-yet-predicted paths, so "uncovered" falls out
//! naturally.)
//!
//! Compared to path-profile based prediction this removes the per-branch
//! history shifts and the per-path table updates entirely: the only runtime
//! operation is one counter increment per backward-taken-branch target, and
//! the only state is one counter per head (Table 2 / Figure 4).

use hotpath_ir::dense::CounterTable;
use hotpath_profiles::{PathExecution, PathId, ProfilingCost};

use crate::predictor::{HotPathPredictor, SchemeKind};

/// The NET predictor.
///
/// # Example
///
/// ```
/// use hotpath_core::{HotPathPredictor, NetPredictor};
/// let mut net = NetPredictor::new(50);
/// assert_eq!(net.delay(), 50);
/// assert_eq!(net.counter_space(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct NetPredictor {
    delay: u64,
    /// Head counters, dense by block id: every executed block's head is a
    /// small integer, so this is the per-arrival hot loop the paper wants
    /// down to "one counter increment" — no hashing.
    heads: CounterTable,
    cost: ProfilingCost,
    predictions: usize,
}

impl NetPredictor {
    /// Creates a NET predictor with prediction delay `delay` (the paper
    /// sweeps 10..10⁶; Dynamo ships with 50).
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0`; use
    /// [`FirstExecutionPredictor`](crate::FirstExecutionPredictor) for the
    /// τ=0 degenerate.
    pub fn new(delay: u64) -> Self {
        assert!(delay > 0, "prediction delay must be positive");
        NetPredictor {
            delay,
            heads: CounterTable::new(),
            cost: ProfilingCost::new(),
            predictions: 0,
        }
    }

    /// Number of predictions made so far.
    pub fn predictions(&self) -> usize {
        self.predictions
    }

    /// Snapshot of the live per-head counters (non-zero only), for
    /// persisting a warmed predictor across a restart.
    pub fn export_counters(&self) -> Vec<(u32, u64)> {
        self.heads.iter().filter(|&(_, count)| count > 0).collect()
    }

    /// Restores counters saved by [`NetPredictor::export_counters`],
    /// overwriting any current count for the same head.
    pub fn import_counters(&mut self, counters: &[(u32, u64)]) {
        for &(head, count) in counters {
            *self.heads.slot(head) = count;
        }
    }

    /// The execution count of a head's counter (testing and diagnostics).
    pub fn head_count(&self, head: hotpath_ir::BlockId) -> u64 {
        self.heads.get(head.as_u32())
    }
}

impl HotPathPredictor for NetPredictor {
    fn observe(&mut self, exec: &PathExecution) -> Option<PathId> {
        // Only targets of backward taken branches carry counters (§4.1).
        if !exec.start.is_net_countable() {
            return None;
        }
        let counter = self.heads.slot(exec.head.as_u32());
        *counter += 1;
        self.cost.counter_increments += 1;
        if *counter >= self.delay {
            // Reset and keep counting uncovered arrivals (the counter
            // moves to the installed trace's exit stubs in Dynamo terms).
            *counter = 0;
            self.predictions += 1;
            hotpath_telemetry::emit!(hotpath_telemetry::Event::TauTrigger {
                scheme: "net",
                head: exec.head.as_u32(),
                tau: self.delay,
                observed: self.cost.counter_increments,
            });
            // The next executing tail is the path executing right now.
            Some(exec.path)
        } else {
            None
        }
    }

    fn scheme(&self) -> SchemeKind {
        SchemeKind::Net
    }

    fn delay(&self) -> u64 {
        self.delay
    }

    fn counter_space(&self) -> usize {
        self.heads.live()
    }

    fn cost(&self) -> ProfilingCost {
        self.cost
    }

    fn reset(&mut self) {
        self.heads.clear();
        self.cost = ProfilingCost::new();
        self.predictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::BlockId;
    use hotpath_profiles::{PathEndKind, PathStartKind};

    fn exec(path: u32, head: u32, start: PathStartKind) -> PathExecution {
        PathExecution {
            path: PathId::new(path),
            head: BlockId::new(head),
            start,
            end: PathEndKind::BackwardBranch,
            blocks: 2,
            insts: 4,
        }
    }

    #[test]
    fn predicts_the_path_running_when_threshold_hits() {
        let mut net = NetPredictor::new(3);
        let a = exec(0, 7, PathStartKind::BackwardTarget);
        let b = exec(1, 7, PathStartKind::BackwardTarget);
        // Arrivals at head 7: a, b, then b again triggers at count 3 and
        // predicts the path executing at that moment (b).
        assert_eq!(net.observe(&a), None);
        assert_eq!(net.observe(&b), None);
        assert_eq!(net.observe(&b), Some(PathId::new(1)));
        // The counter resets and keeps counting the arrivals that are not
        // yet covered by a prediction (exit-stub behavior): after another
        // three uncovered arrivals the sibling is predicted too.
        assert_eq!(net.observe(&a), None);
        assert_eq!(net.observe(&a), None);
        assert_eq!(net.observe(&a), Some(PathId::new(0)));
        assert_eq!(net.head_count(BlockId::new(7)), 0);
        assert_eq!(net.predictions(), 2);
    }

    #[test]
    fn counts_all_paths_through_a_shared_head() {
        // Counter accumulates across different paths with the same head —
        // the whole point of head-only profiling (Figure 1's loop needs one
        // counter for five paths).
        let mut net = NetPredictor::new(5);
        for i in 0..4 {
            let e = exec(i % 2, 3, PathStartKind::BackwardTarget);
            assert_eq!(net.observe(&e), None);
        }
        let trigger = exec(0, 3, PathStartKind::BackwardTarget);
        assert_eq!(net.observe(&trigger), Some(PathId::new(0)));
        assert_eq!(net.counter_space(), 1);
    }

    #[test]
    fn ignores_non_backward_starts() {
        let mut net = NetPredictor::new(1);
        assert_eq!(net.observe(&exec(0, 1, PathStartKind::Entry)), None);
        assert_eq!(net.observe(&exec(0, 1, PathStartKind::Continuation)), None);
        assert_eq!(net.counter_space(), 0, "no counters for non-head starts");
        assert_eq!(net.cost().counter_increments, 0);
    }

    #[test]
    fn delay_one_predicts_first_arrival() {
        let mut net = NetPredictor::new(1);
        let e = exec(9, 2, PathStartKind::BackwardTarget);
        assert_eq!(net.observe(&e), Some(PathId::new(9)));
    }

    #[test]
    fn distinct_heads_have_distinct_counters() {
        let mut net = NetPredictor::new(2);
        net.observe(&exec(0, 1, PathStartKind::BackwardTarget));
        net.observe(&exec(1, 2, PathStartKind::BackwardTarget));
        assert_eq!(net.counter_space(), 2);
        assert_eq!(net.head_count(BlockId::new(1)), 1);
        assert_eq!(net.head_count(BlockId::new(2)), 1);
        // Neither has reached τ=2.
        assert_eq!(net.predictions(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut net = NetPredictor::new(1);
        net.observe(&exec(0, 1, PathStartKind::BackwardTarget));
        assert_eq!(net.predictions(), 1);
        net.reset();
        assert_eq!(net.counter_space(), 0);
        assert_eq!(net.predictions(), 0);
        // After reset the head counter starts over and can predict again.
        assert_eq!(
            net.observe(&exec(0, 1, PathStartKind::BackwardTarget)),
            Some(PathId::new(0))
        );
    }

    #[test]
    #[should_panic(expected = "prediction delay")]
    fn zero_delay_panics() {
        let _ = NetPredictor::new(0);
    }

    #[test]
    fn cost_is_one_increment_per_counted_arrival() {
        let mut net = NetPredictor::new(100);
        for _ in 0..10 {
            net.observe(&exec(0, 1, PathStartKind::BackwardTarget));
        }
        for _ in 0..5 {
            net.observe(&exec(1, 1, PathStartKind::Continuation));
        }
        assert_eq!(net.cost().counter_increments, 10);
        assert_eq!(net.cost().history_shifts, 0, "NET never shifts history");
        assert_eq!(net.cost().table_updates, 0, "NET has no path table");
    }
}
