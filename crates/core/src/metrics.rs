//! The abstract prediction metrics of paper §3.
//!
//! For a prediction set `P` made against `HotPath_h`:
//!
//! * **hit rate** — hot flow captured *after* each path's prediction
//!   instant, as a percentage of `freq(HotPath_h)`;
//! * **noise rate** — cold flow inadvertently captured after prediction,
//!   same denominator;
//! * **missed opportunity cost (MOC)** — hot-path executions burned before
//!   their prediction (the τ executions per predicted path in the paper's
//!   closed form);
//! * **profiled flow** — all executions not covered by a prediction:
//!   pre-prediction executions of predicted paths plus the entire flow of
//!   never-predicted paths.
//!
//! The paper computes `Hits(P) = freq(P ∩ HotPath) − |P ∩ HotPath|·τ`
//! assuming every predicted path was profiled exactly τ times. We replay
//! the recorded execution stream and attribute *every individual execution*
//! to profiled or predicted flow, which makes the identity
//! `profiled + hits + noise = Flow` exact for both schemes — including NET,
//! where a predicted path may have executed fewer than τ times itself
//! (its head absorbed arrivals from sibling paths).

use hotpath_profiles::{HotPathSet, PathStream, PathTable, ProfilingCost};

use crate::predictor::{HotPathPredictor, SchemeKind};

/// The measured outcome of running one prediction scheme over one recorded
/// run.
#[derive(Clone, Debug)]
pub struct PredictionOutcome {
    /// Scheme that produced the outcome.
    pub scheme: SchemeKind,
    /// Prediction delay τ used.
    pub delay: u64,
    /// Total flow of the run (number of path executions).
    pub total_flow: u64,
    /// Flow of the hot set the outcome is measured against.
    pub hot_flow: u64,
    /// Executions attributed to profiling (before prediction, or of paths
    /// never predicted).
    pub profiled_flow: u64,
    /// Hot-path executions captured after prediction (`Hits`).
    pub hits: u64,
    /// Cold-path executions captured after prediction (`Noise`).
    pub noise: u64,
    /// Hot-path executions spent before their path's prediction (`MOC`).
    pub missed_opportunity: u64,
    /// Paths predicted, total.
    pub predictions: usize,
    /// Predicted paths that are in the hot set.
    pub hot_predictions: usize,
    /// Counters allocated by the scheme.
    pub counter_space: usize,
    /// Profiling operations performed by the scheme.
    pub cost: ProfilingCost,
}

impl PredictionOutcome {
    /// `HitRate(P)` — percentage of the hot flow captured (§3).
    pub fn hit_rate(&self) -> f64 {
        percentage(self.hits, self.hot_flow)
    }

    /// `NoiseRate(P)` — captured cold flow as a percentage of the hot flow
    /// (§3; note the denominator is the hot flow, so noise can exceed
    /// 100%).
    pub fn noise_rate(&self) -> f64 {
        percentage(self.noise, self.hot_flow)
    }

    /// Profiled flow as a percentage of total flow (the X axis of Figures
    /// 2 and 3).
    pub fn profiled_flow_pct(&self) -> f64 {
        percentage(self.profiled_flow, self.total_flow)
    }

    /// Predicted flow as a percentage of total flow (complement of
    /// profiled flow).
    pub fn predicted_flow_pct(&self) -> f64 {
        100.0 - self.profiled_flow_pct()
    }

    /// `MOC(P)` as a percentage of hot flow.
    pub fn moc_pct(&self) -> f64 {
        percentage(self.missed_opportunity, self.hot_flow)
    }
}

fn percentage(num: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        num as f64 / denom as f64 * 100.0
    }
}

/// Replays `stream` through `predictor` and measures the §3 metrics
/// against `hot`.
///
/// Every execution of an already-predicted path counts as predicted flow
/// (hit or noise); every other execution counts as profiled flow and is
/// fed to the predictor.
pub fn evaluate<P: HotPathPredictor>(
    stream: &PathStream,
    table: &PathTable,
    hot: &HotPathSet,
    predictor: &mut P,
) -> PredictionOutcome {
    let hot_bits = hot.membership_bitmap(table);
    let mut predicted = vec![false; table.len()];
    let mut pre_counts = vec![0u64; table.len()];

    let mut profiled = 0u64;
    let mut hits = 0u64;
    let mut noise = 0u64;
    let mut moc = 0u64;
    let mut predictions = 0usize;
    let mut hot_predictions = 0usize;

    for i in 0..stream.len() {
        let id = stream.path(i);
        let idx = id.index();
        if predicted[idx] {
            if hot_bits[idx] {
                hits += 1;
            } else {
                noise += 1;
            }
            continue;
        }
        profiled += 1;
        pre_counts[idx] += 1;
        let exec = stream.execution(i, table);
        if let Some(p) = predictor.observe(&exec) {
            let pi = p.index();
            debug_assert!(!predicted[pi], "a path must be predicted at most once");
            predicted[pi] = true;
            predictions += 1;
            if hot_bits[pi] {
                hot_predictions += 1;
                moc += pre_counts[pi];
            }
        }
    }

    PredictionOutcome {
        scheme: predictor.scheme(),
        delay: predictor.delay(),
        total_flow: stream.len() as u64,
        hot_flow: hot.hot_flow(),
        profiled_flow: profiled,
        hits,
        noise,
        missed_opportunity: moc,
        predictions,
        hot_predictions,
        counter_space: predictor.counter_space(),
        cost: predictor.cost(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetPredictor;
    use crate::path_profile::PathProfilePredictor;
    use crate::predictor::FirstExecutionPredictor;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::{CmpOp, Program};
    use hotpath_profiles::{PathExtractor, StreamingSink};
    use hotpath_vm::Vm;

    /// Loop with a rare branch: iterations 0..990 take the common arm,
    /// the last 10 take the rare arm.
    fn skewed_program(trip: i64, rare_after: i64) -> Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let common = fb.new_block();
        let rare = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let r = fb.cmp_imm(CmpOp::Ge, i, rare_after);
        fb.branch(r, rare, common);
        fb.switch_to(common);
        fb.jump(latch);
        fb.switch_to(rare);
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    fn record(p: &Program) -> (PathStream, PathTable) {
        let mut ex = PathExtractor::new(StreamingSink::new());
        Vm::new(p).run(&mut ex).unwrap();
        let (sink, table) = ex.into_parts();
        (sink.into_stream(), table)
    }

    #[test]
    fn flow_identity_holds_for_all_schemes() {
        let p = skewed_program(2000, 1990);
        let (stream, table) = record(&p);
        let hot = stream.to_profile().hot_set(0.001);
        for delay in [1u64, 10, 50, 500, 5000] {
            let o = evaluate(&stream, &table, &hot, &mut NetPredictor::new(delay));
            assert_eq!(
                o.profiled_flow + o.hits + o.noise,
                o.total_flow,
                "NET τ={delay}"
            );
            let o = evaluate(&stream, &table, &hot, &mut PathProfilePredictor::new(delay));
            assert_eq!(
                o.profiled_flow + o.hits + o.noise,
                o.total_flow,
                "PP τ={delay}"
            );
        }
    }

    #[test]
    fn first_execution_maximizes_hit_rate_and_noise() {
        let p = skewed_program(2000, 1990);
        let (stream, table) = record(&p);
        let profile = stream.to_profile();
        let hot = profile.hot_set(0.001);
        let o = evaluate(&stream, &table, &hot, &mut FirstExecutionPredictor::new());
        // Each path is profiled exactly once (its first execution).
        assert_eq!(o.profiled_flow, profile.path_count() as u64);
        // Everything else is captured: hits = hot_flow - |hot paths|.
        assert_eq!(o.hits, hot.hot_flow() - hot.len() as u64);
        // Noise captures all the cold flow beyond first executions.
        assert_eq!(
            o.noise,
            o.total_flow - hot.hot_flow() - (profile.path_count() - hot.len()) as u64
        );
    }

    #[test]
    fn infinite_delay_profiles_everything() {
        let p = skewed_program(500, 490);
        let (stream, table) = record(&p);
        let hot = stream.to_profile().hot_set(0.001);
        let o = evaluate(&stream, &table, &hot, &mut NetPredictor::new(u64::MAX));
        assert_eq!(o.profiled_flow, o.total_flow);
        assert_eq!(o.hits, 0);
        assert_eq!(o.noise, 0);
        assert_eq!(o.hit_rate(), 0.0);
        assert_eq!(o.profiled_flow_pct(), 100.0);
    }

    #[test]
    fn hit_rate_decreases_with_delay() {
        let p = skewed_program(5000, 4990);
        let (stream, table) = record(&p);
        let hot = stream.to_profile().hot_set(0.001);
        let mut last = f64::INFINITY;
        for delay in [1u64, 10, 100, 1000, 4000] {
            let o = evaluate(&stream, &table, &hot, &mut NetPredictor::new(delay));
            assert!(
                o.hit_rate() <= last + 1e-9,
                "hit rate should not increase with τ (τ={delay})"
            );
            last = o.hit_rate();
        }
    }

    #[test]
    fn net_and_path_profile_agree_on_single_dominant_path() {
        let p = skewed_program(5000, 4990);
        let (stream, table) = record(&p);
        let hot = stream.to_profile().hot_set(0.001);
        let net = evaluate(&stream, &table, &hot, &mut NetPredictor::new(50));
        let pp = evaluate(&stream, &table, &hot, &mut PathProfilePredictor::new(50));
        // One dominant loop path: both schemes predict it at the same
        // instant, so hit rates agree tightly.
        assert!((net.hit_rate() - pp.hit_rate()).abs() < 0.5);
        // NET uses at most as much counter space (heads <= paths).
        assert!(net.counter_space <= pp.counter_space);
        // And performs far fewer profiling operations.
        assert!(net.cost.total_ops() < pp.cost.total_ops());
    }

    #[test]
    fn moc_tracks_pre_prediction_hot_flow() {
        let p = skewed_program(5000, 4990);
        let (stream, table) = record(&p);
        let hot = stream.to_profile().hot_set(0.001);
        let o = evaluate(&stream, &table, &hot, &mut PathProfilePredictor::new(100));
        // Paper closed form: each predicted hot path burned exactly τ
        // executions before prediction.
        assert_eq!(o.missed_opportunity, o.hot_predictions as u64 * 100);
        assert!(o.moc_pct() > 0.0);
    }

    #[test]
    fn rates_against_empty_hot_set_are_zero() {
        let p = skewed_program(100, 90);
        let (stream, table) = record(&p);
        // Absurd threshold: nothing is hot.
        let hot = stream.to_profile().hot_set(1.0);
        assert!(hot.is_empty());
        let o = evaluate(&stream, &table, &hot, &mut NetPredictor::new(5));
        assert_eq!(o.hits, 0);
        assert_eq!(o.hit_rate(), 0.0);
        assert_eq!(o.noise_rate(), 0.0);
    }
}
