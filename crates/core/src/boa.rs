//! A Boa-style branch-profile trace selector (paper §7, related work).
//!
//! The Boa binary translator [17] profiles *every branch* during
//! interpretation and, when a hot group entry is found, constructs a trace
//! by following the most likely successor of each block according to the
//! collected frequencies. The paper's critique:
//!
//! > *Unlike our NET scheme, Boa's prediction scheme requires every branch
//! > to be profiled. Furthermore, constructing paths from isolated branch
//! > frequencies ignores branch correlation, which may lead to paths that,
//! > as a whole, never execute.*
//!
//! [`BoaSelector`] reproduces that scheme over the block-event stream:
//! per-edge counters (one profiling operation per control transfer),
//! per-head arrival counters with the same delay τ as NET, and trace
//! construction by argmax successor walking. The `ablation_boa` bench
//! measures the phantom rate — constructed traces whose block sequence
//! never executed as a real path — which is the branch-correlation failure
//! in the flesh.

use hotpath_ir::dense::{AdjCounters, CounterTable};
use hotpath_ir::fasthash::FxHashSet;
use hotpath_profiles::ProfilingCost;
use hotpath_vm::{BlockEvent, ExecutionObserver, TransferKind};

/// Maximum length of a constructed trace, in blocks.
pub const BOA_TRACE_CAP: usize = 64;

/// The Boa-style selector; drive it as a VM observer.
#[derive(Clone, Debug)]
pub struct BoaSelector {
    delay: u64,
    /// Edge frequencies as dense per-source adjacency rows; the rows also
    /// carry each block's observed successors in first-seen order, so the
    /// old separate successor-list map is gone.
    edges: AdjCounters,
    /// Arrival counters at backward-transfer targets, dense by block id.
    heads: CounterTable,
    /// Constructed traces, deduplicated.
    traces: Vec<Vec<u32>>,
    seen_traces: FxHashSet<Vec<u32>>,
    cost: ProfilingCost,
}

impl BoaSelector {
    /// Creates a selector with prediction delay `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0`.
    pub fn new(delay: u64) -> Self {
        assert!(delay > 0, "prediction delay must be positive");
        BoaSelector {
            delay,
            edges: AdjCounters::new(),
            heads: CounterTable::new(),
            traces: Vec::new(),
            seen_traces: FxHashSet::default(),
            cost: ProfilingCost::new(),
        }
    }

    /// The constructed traces, in construction order.
    pub fn traces(&self) -> &[Vec<u32>] {
        &self.traces
    }

    /// Number of distinct branch-edge counters allocated — Boa's counter
    /// space, to contrast with NET's per-head counters.
    pub fn counter_space(&self) -> usize {
        self.edges.edge_count()
    }

    /// Profiling operations performed (one per control transfer).
    pub fn cost(&self) -> &ProfilingCost {
        &self.cost
    }

    /// Builds a trace from `head` by repeatedly following the most
    /// frequent observed successor, stopping at a backward edge (block ids
    /// are in address order), a block without data, a cycle, or the cap.
    fn construct(&self, head: u32) -> Vec<u32> {
        let mut trace = vec![head];
        let mut cur = head;
        while trace.len() < BOA_TRACE_CAP {
            // Rows keep first-seen order and `max_by_key` keeps the last
            // maximum, reproducing the original successor tie-break.
            let next = self
                .edges
                .row(cur)
                .iter()
                .max_by_key(|&&(_, count)| count)
                .map(|&(s, _)| s);
            let Some(next) = next else { break };
            // A backward edge ends the trace (it would close the loop).
            if next <= cur && trace.len() > 1 || next == head {
                break;
            }
            if trace.contains(&next) {
                break;
            }
            trace.push(next);
            cur = next;
        }
        trace
    }
}

impl ExecutionObserver for BoaSelector {
    fn on_block(&mut self, event: &BlockEvent) {
        let Some(from) = event.from else { return };
        // Every branch is profiled: bump the edge counter.
        let from = from.as_u32();
        let to = event.block.as_u32();
        self.edges.bump(from, to);
        self.cost.counter_increments += 1;

        // Hot-group entries: arrivals via backward transfers, like NET.
        if event.backward && event.kind != TransferKind::Start {
            let c = self.heads.slot(to);
            *c += 1;
            if *c >= self.delay {
                *c = 0;
                let trace = self.construct(to);
                if trace.len() > 1 && self.seen_traces.insert(trace.clone()) {
                    self.traces.push(trace);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    use hotpath_vm::Vm;

    /// A loop whose two branch decisions are perfectly anti-correlated:
    /// iteration takes (A, not-B) or (not-A, B), never (A, B). Argmax
    /// construction gleefully glues the two majority outcomes together
    /// into a path that never executes — the paper's §7 critique.
    fn anti_correlated_loop(trip: i64) -> hotpath_ir::Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let a1 = fb.new_block();
        let a2 = fb.new_block();
        let mid = fb.new_block();
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let par = fb.reg();
        fb.and_imm(par, i, 1);
        // Branch A: taken ~half the time (parity 1).
        fb.branch(par, a1, a2);
        fb.switch_to(a1);
        fb.jump(mid);
        fb.switch_to(a2);
        fb.jump(mid);
        fb.switch_to(mid);
        // Branch B: exactly the opposite of A.
        let npar = fb.cmp_imm(CmpOp::Eq, par, 0);
        fb.branch(npar, b1, b2);
        fb.switch_to(b1);
        fb.jump(latch);
        fb.switch_to(b2);
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn profiles_every_transfer() {
        let p = anti_correlated_loop(100);
        let mut boa = BoaSelector::new(10);
        let stats = Vm::new(&p).run(&mut boa).unwrap();
        // One counter bump per transfer (all events except the first).
        assert_eq!(boa.cost().counter_increments, stats.blocks_executed - 1);
        assert!(boa.counter_space() > 5, "per-edge counters");
    }

    #[test]
    fn constructs_traces_at_hot_heads() {
        let p = anti_correlated_loop(500);
        let mut boa = BoaSelector::new(50);
        Vm::new(&p).run(&mut boa).unwrap();
        assert!(!boa.traces().is_empty());
        for t in boa.traces() {
            assert!(t.len() > 1);
            assert!(t.len() <= BOA_TRACE_CAP);
            // Forward walk: strictly increasing block ids after the head.
            for w in t[1..].windows(2) {
                assert!(w[0] < w[1], "constructed traces walk forward");
            }
        }
    }

    #[test]
    #[should_panic(expected = "prediction delay")]
    fn zero_delay_panics() {
        let _ = BoaSelector::new(0);
    }
}
